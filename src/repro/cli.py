"""Command-line interface: ``sized`` (or ``python -m repro``).

Subcommands::

    sized run FILE [--mode off|contract|full] [--strategy cm|imperative]
                   [--machine compiled|tree|native] [--backoff] [--mc]
                   [--engine bitmask|reference] [--max-steps N]
                   [--discharge off|try|require] [--discharge-cache DIR]
                   [--result-kind NAME=KIND ...]
    sized verify FILE --entry NAME [--kinds nat,nat] [--result-kind nat]
                      [--mc] [--engine bitmask|reference] [--json]
    sized trace FILE [--mode full|contract] [--machine compiled|tree]
                     [--mc] [--max-steps N] [--max-depth N] [--max-nodes N]
    sized bench table1|fig10|divergence|ablation|mc|compose|interp|
                residual|native
                [--scale quick|full] [--smoke] [--out PATH]
    sized corpus [--diverging]
    sized serve [--host H] [--port P] [--workers N] [--batch-window-ms MS]
                [--default-fuel N] [--tenant-budget N]
                [--request-timeout S] [--cache-dir DIR] [--shard-depth N]
                [--allow-fault-injection]
    sized fuzz [--n N] [--seed S] [--mode both|terminating|diverging]
               [--matrix full|quick|m:e:p,...] [--fuel N] [--features a,b]
               [--no-shrink] [--archive] [--json] [--out PATH]
               [--replay FILE.scm]
    sized chaos [--n N] [--seed S] [--faults a,b,...] [--workers N]
                [--json] [--out PATH]

``--mc`` switches the evidence from size-change graphs to monotonicity-
constraint graphs (the paper's §6.2 future-work extension): counting-up-
to-a-ceiling loops pass without custom measures.

``--discharge`` stages the §4 verifier in front of the §5 monitor (the
residual-enforcement pipeline, :mod:`repro.analysis.discharge`): the
workload's entries are inferred from the top-level calls, verified (with
an in-memory — or, via ``--discharge-cache``, on-disk — certificate
cache), and every proven λ runs monitor-free.  ``try`` keeps residual
checks on whatever could not be proven; ``require`` exits with status 5
instead of running partially monitored.

``--engine`` selects the size-change graph representation the monitor
composes: ``bitmask`` (default, two machine ints per graph) or
``reference`` (the paper's frozenset of arcs).  Both raise on the same
call sequences; ``sized bench compose`` measures the gap.

``--machine`` selects the evaluator: ``compiled`` (default — the
lexical-addressing pass of :mod:`repro.lang.resolve` plus the slot-frame
machine), ``tree`` (the direct AST walker) or ``native`` (``run`` only:
exec-generated Python bodies for discharged λs, trampoline-driven, with
automatic fallback to the compiled machine's ``eval_code`` for anything
residual-monitored).  All produce identical answers; ``sized bench
interp`` measures the compiled/tree gap (``BENCH_interp.json``) and
``sized bench native`` the native-tier speedup (``BENCH_native.json``).

``fuzz`` drives the property-based differential tester of
:mod:`repro.fuzz`: seeded generation of terminating- and
diverging-by-construction programs, the 18-cell
{tree, compiled, native} × {bitmask, reference} × {off, monitored,
discharged}
matrix, greedy shrinking, and the ``tests/regressions/`` archive.
``--replay`` re-runs one archived ``.scm`` repro (or any campaign seed
via ``--seed S --n 1``).  The exit code gates CI: 0 when every oracle
check passed, 1 when any divergence was found.

``--fuel`` (run/trace/fuzz) bounds machine steps like ``--max-steps``
but reports exhaustion distinctly (``FuelExhausted``) — the fuzzer's
way of observing divergence without hanging.  ``--fuel 0`` is immediate
exhaustion (no steps run) on every path, including the serve budgets.

``serve`` runs the batched termination-checking service
(:mod:`repro.serve`): JSON-lines over TCP, request dedupe by
content-addressed cache key, warm worker processes each owning a shard
of the on-disk certificate store, per-tenant fuel budgets, and a
``stats`` metrics surface.  ``benchmarks/bench_serve.py`` is the load
generator (writes ``BENCH_serve.json``).

``chaos`` proves the serve resilience layer under a *seeded* fault plan
(:mod:`repro.serve.chaos`): worker crashes, slow and wedged workers,
shard flapping that trips circuit breakers, corrupted on-disk cache
entries, connection cuts, and malformed frames are injected against an
in-process server while retrying clients drive traffic.  Exit 0 iff all
invariants hold (zero lost, zero duplicated, delivered results
byte-identical to the direct pipeline, budgets conserved, server healthy
at the end); same seed, same campaign.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.eval.machine import Answer, run_program, run_source
from repro.sct.monitor import SCMonitor
from repro.values.values import write_value


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sized",
        description="Size-change termination as a contract (PLDI 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a program in the embedded language")
    p_run.add_argument("file")
    p_run.add_argument("--mode", choices=["off", "contract", "full"],
                       default="contract")
    p_run.add_argument("--strategy", choices=["cm", "imperative"], default="cm")
    p_run.add_argument("--backoff", action="store_true")
    p_run.add_argument("--mc", action="store_true",
                       help="monitor with monotonicity-constraint graphs")
    p_run.add_argument("--engine", choices=["bitmask", "reference"],
                       default="bitmask",
                       help="size-change graph representation to compose")
    p_run.add_argument("--machine", choices=["compiled", "tree", "native"],
                       default="compiled",
                       help="evaluator: lexically-addressed slot-frame "
                            "machine (default), the tree walker, or the "
                            "native tier (Python-compiled discharged λs "
                            "with compiled-machine fallback)")
    p_run.add_argument("--max-steps", type=int, default=None)
    p_run.add_argument("--fuel", type=int, default=None,
                       help="step bound with a distinct FuelExhausted "
                            "outcome (wins over --max-steps)")
    p_run.add_argument("--discharge", choices=["off", "try", "require"],
                       default="off",
                       help="statically discharge dynamic checks: 'try' "
                            "keeps residual monitoring, 'require' refuses "
                            "to run partially monitored (exit 5)")
    p_run.add_argument("--discharge-cache", default=None, metavar="DIR",
                       help="on-disk certificate store for --discharge "
                            "(amortizes verification across processes)")
    p_run.add_argument("--result-kind", action="append", default=[],
                       metavar="NAME=KIND",
                       help="contract range of a function for --discharge "
                            "verification (e.g. ack=nat); repeatable")

    p_verify = sub.add_parser("verify", help="statically verify termination")
    p_verify.add_argument("file")
    p_verify.add_argument("--entry", required=True)
    p_verify.add_argument("--kinds", default="",
                          help="comma-separated: nat,int,list,pair,fun,any")
    p_verify.add_argument("--result-kind", default=None,
                          help="contract range of the entry (nat/int)")
    p_verify.add_argument("--mc", action="store_true",
                          help="verify with monotonicity constraints")
    p_verify.add_argument("--engine", choices=["bitmask", "reference"],
                          default="bitmask",
                          help="phase-2 graph-closure representation "
                               "(ignored with --mc: MC graphs are packed "
                               "internally regardless)")
    p_verify.add_argument("--json", action="store_true",
                          help="machine-readable verdict on stdout "
                               "(status, reasons, witness, discharge); "
                               "the exit code still gates: 0 verified, "
                               "3 unknown")

    p_trace = sub.add_parser(
        "trace", help="print the Fig. 1 style call/size-change tree")
    p_trace.add_argument("file")
    p_trace.add_argument("--mode", choices=["contract", "full"],
                         default="full")
    p_trace.add_argument("--mc", action="store_true")
    p_trace.add_argument("--engine", choices=["bitmask", "reference"],
                         default="bitmask")
    p_trace.add_argument("--machine", choices=["compiled", "tree"],
                         default="compiled")
    p_trace.add_argument("--max-steps", type=int, default=None)
    p_trace.add_argument("--fuel", type=int, default=None)
    p_trace.add_argument("--max-depth", type=int, default=None)
    p_trace.add_argument("--max-nodes", type=int, default=200)

    p_bench = sub.add_parser("bench", help="regenerate a table or figure")
    p_bench.add_argument("which",
                         choices=["table1", "fig10", "divergence", "ablation",
                                  "mc", "compose", "interp", "residual",
                                  "native"])
    p_bench.add_argument("--scale", choices=["quick", "full"], default="quick")
    p_bench.add_argument("--repeats", type=int, default=None,
                         help="best-of repeats per cell (default: 3, or the"
                              " interp scale's own default)")
    p_bench.add_argument("--smoke", action="store_true",
                         help="interp/residual/native: the tiny CI subset")
    p_bench.add_argument("--out", default=None,
                         help="interp/residual/native: where to write the "
                              "JSON report (default BENCH_interp.json / "
                              "BENCH_residual.json / BENCH_native.json)")

    p_corpus = sub.add_parser("corpus", help="list the evaluation corpus")
    p_corpus.add_argument("--diverging", action="store_true")

    p_serve = sub.add_parser(
        "serve", help="batched termination-checking service (JSON lines "
                      "over TCP; see docs/architecture.md)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8737,
                         help="TCP port (0 = ephemeral; the bound port is "
                              "announced on stdout)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="warm worker processes / cache shards "
                              "(default: min(4, cpus))")
    p_serve.add_argument("--batch-window-ms", type=float, default=2.0,
                         help="how long the first request of a batch "
                              "waits for identical joiners")
    p_serve.add_argument("--default-fuel", type=int, default=5_000_000,
                         help="step budget for requests that do not "
                              "send 'fuel' (0 = immediate exhaustion; "
                              "--default-fuel -1 = unlimited)")
    p_serve.add_argument("--tenant-budget", type=int, default=None,
                         help="total fuel each tenant may spend "
                              "(default: unlimited, spend still metered)")
    p_serve.add_argument("--request-timeout", type=float, default=60.0,
                         help="wall-clock seconds per worker attempt; "
                              "exceeding it recycles the worker")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="sharded on-disk certificate store shared "
                              "by the workers (default: memory only)")
    p_serve.add_argument("--shard-depth", type=int, default=2,
                         help="hash-prefix directory depth of the "
                              "on-disk store")
    p_serve.add_argument("--allow-fault-injection", action="store_true",
                         help="enable op=crash (tests/benches only)")

    p_fuzz = sub.add_parser(
        "fuzz", help="property-based differential testing over the "
                     "machine × engine × discharge matrix")
    p_fuzz.add_argument("--n", type=int, default=100,
                        help="number of generated programs (default 100)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="base seed; program i uses seed+i")
    p_fuzz.add_argument("--mode",
                        choices=["both", "terminating", "diverging"],
                        default="both")
    p_fuzz.add_argument("--matrix", default="full",
                        help="'full' (12 cells), 'quick' (4), or a comma "
                             "list of machine:engine:policy triples")
    p_fuzz.add_argument("--fuel", type=int, default=None,
                        help="override the generator's per-program fuel")
    p_fuzz.add_argument("--features", default=None,
                        help="comma-subset of the generator features "
                             "(accumulators,higher-order,contracts,cells,"
                             "vectors,promises,output)")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="report divergences unminimized")
    p_fuzz.add_argument("--max-shrink", type=int, default=200,
                        help="shrink attempt budget per divergence")
    p_fuzz.add_argument("--archive", action="store_true",
                        help="write minimized repros to tests/regressions/")
    p_fuzz.add_argument("--json", action="store_true",
                        help="full FuzzReport JSON on stdout")
    p_fuzz.add_argument("--out", default=None, metavar="PATH",
                        help="also write the JSON report to PATH "
                             "(e.g. BENCH_fuzz.json)")
    p_fuzz.add_argument("--replay", default=None, metavar="FILE",
                        help="re-run one archived tests/regressions/*.scm "
                             "repro instead of generating")

    p_chaos = sub.add_parser(
        "chaos", help="seeded fault-injection campaign against an "
                      "in-process serve instance")
    p_chaos.add_argument("--n", type=int, default=200,
                         help="number of traffic requests (default 200)")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="seed for the fault plan, traffic mix, and "
                              "client retry jitter")
    p_chaos.add_argument("--faults", default=None,
                         help="comma-subset of fault kinds "
                              "(crash,slow,hang,flap,corrupt-cache,"
                              "conn-cut,malformed); default all")
    p_chaos.add_argument("--workers", type=int, default=2,
                         help="worker shards for the chaos server "
                              "(default 2)")
    p_chaos.add_argument("--json", action="store_true",
                         help="full campaign report JSON on stdout")
    p_chaos.add_argument("--out", default=None, metavar="PATH",
                         help="also write the JSON report to PATH "
                              "(e.g. BENCH_chaos.json)")

    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "corpus":
        return _cmd_corpus(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    return 2


def _make_monitor(mc: bool, **options):
    if mc:
        from repro.mc.monitor import MCMonitor

        return MCMonitor(**options)
    return SCMonitor(**options)


def _parse_result_kinds(pairs) -> Optional[dict]:
    result_kinds = {}
    for pair in pairs:
        name, sep, kind = pair.partition("=")
        if not sep or not name or not kind:
            raise SystemExit(f"--result-kind expects NAME=KIND, got {pair!r}")
        result_kinds[name] = kind
    return result_kinds or None


def _cmd_run(args) -> int:
    from repro.lang.parser import parse_program

    with open(args.file) as f:
        source = f.read()
    program = parse_program(source, source=args.file)
    monitor = _make_monitor(args.mc, backoff=args.backoff,
                            engine=args.engine)
    policy = None
    if args.discharge != "off":
        from repro.analysis.discharge import (VerificationCache,
                                              discharge_for_run)

        # Always an explicit instance: the CLI never touches the
        # process-wide default_cache(), so runs are isolated.
        cache = VerificationCache(args.discharge_cache)
        result = discharge_for_run(
            program, text=source, mc=args.mc,
            result_kinds=_parse_result_kinds(args.result_kind), cache=cache)
        if args.discharge == "require" and not result.complete:
            print("cannot fully discharge the dynamic checks:",
                  file=sys.stderr)
            rendered = result.render()
            if rendered:
                print(rendered, file=sys.stderr)
            return 5
        policy = result.policy
    answer = run_program(program, mode=args.mode, strategy=args.strategy,
                         monitor=monitor, max_steps=args.max_steps,
                         fuel=args.fuel, machine=args.machine,
                         discharge=policy)
    if answer.output:
        sys.stdout.write(answer.output)
        if not answer.output.endswith("\n"):
            sys.stdout.write("\n")
    if answer.kind == Answer.VALUE:
        print(write_value(answer.value))
        return 0
    if answer.kind == Answer.SC_ERROR:
        print(answer.violation, file=sys.stderr)
        return 3
    if answer.kind == Answer.TIMEOUT:
        print(_timeout_message(answer), file=sys.stderr)
        return 4
    print(f"run-time error: {answer.error}", file=sys.stderr)
    return 1


def _timeout_message(answer) -> str:
    from repro.eval.errors import FuelExhausted

    if isinstance(answer.error, FuelExhausted):
        return str(answer.error)
    return "machine timeout (step budget exhausted)"


def _cmd_verify(args) -> int:
    import json

    with open(args.file) as f:
        source = f.read()
    kinds = [k for k in args.kinds.split(",") if k]
    result_kinds = {args.entry: args.result_kind} if args.result_kind else None
    if args.mc:
        from repro.mc.static import verify_source_mc

        verdict = verify_source_mc(source, args.entry, kinds,
                                   result_kinds=result_kinds)
    else:
        from repro.symbolic import verify_source

        verdict = verify_source(source, args.entry, kinds,
                                result_kinds=result_kinds,
                                graph_engine=args.engine)
    if args.json:
        print(json.dumps(verdict.to_json(entry=args.entry, kinds=kinds),
                         indent=2))
    else:
        print(verdict.render())
    # Nonzero on UNKNOWN so CI scripts can gate on the verdict.
    return 0 if verdict.verified else 3


def _cmd_trace(args) -> int:
    from repro.sct.trace import render_tree, trace_source

    with open(args.file) as f:
        source = f.read()
    result = trace_source(source,
                          monitor=_make_monitor(args.mc, engine=args.engine),
                          mode=args.mode, max_steps=args.max_steps,
                          fuel=args.fuel, machine=args.machine)
    print(render_tree(result.roots, max_depth=args.max_depth,
                      max_nodes=args.max_nodes))
    answer = result.answer
    if answer.kind == Answer.VALUE:
        print(f"⇒ {write_value(answer.value)}")
        return 0
    if answer.kind == Answer.SC_ERROR:
        print(answer.violation, file=sys.stderr)
        return 3
    if answer.kind == Answer.TIMEOUT:
        print(_timeout_message(answer), file=sys.stderr)
        return 4
    print(f"run-time error: {answer.error}", file=sys.stderr)
    return 1


def _cmd_bench(args) -> int:
    if args.which == "table1":
        from repro.bench import render_table1, run_table1

        print(render_table1(run_table1()))
    elif args.which == "fig10":
        from repro.bench import render_fig10, run_fig10

        print(render_fig10(run_fig10(scale=args.scale,
                                     repeats=args.repeats or 3)))
    elif args.which == "divergence":
        from repro.bench import render_divergence, run_divergence

        print(render_divergence(run_divergence()))
    elif args.which == "mc":
        from repro.bench import render_mc, run_mc_dynamic, run_mc_static

        print(render_mc(run_mc_static(),
                        run_mc_dynamic(scale=args.scale,
                                       repeats=args.repeats or 3)))
    elif args.which == "compose":
        from repro.bench import render_compose, run_compose

        print(render_compose(run_compose(scale=args.scale,
                                         repeats=args.repeats or 3)))
    elif args.which == "interp":
        from repro.bench import render_interp, run_interp, write_interp_json

        scale = "smoke" if args.smoke else args.scale
        out = args.out or "BENCH_interp.json"
        cells = run_interp(scale=scale, repeats=args.repeats)
        print(render_interp(cells))
        write_interp_json(cells, out, scale=scale, repeats=args.repeats)
        print(f"\nwrote {out}")
    elif args.which == "residual":
        from repro.bench import (render_residual, run_residual,
                                 write_residual_json)

        scale = "smoke" if args.smoke else args.scale
        out = args.out or "BENCH_residual.json"
        cells = run_residual(scale=scale, repeats=args.repeats)
        print(render_residual(cells))
        write_residual_json(cells, out, scale=scale, repeats=args.repeats)
        print(f"\nwrote {out}")
    elif args.which == "native":
        from repro.bench import (render_native, run_native,
                                 write_native_json)
        from repro.bench.native import native_acceptance

        scale = "smoke" if args.smoke else args.scale
        out = args.out or "BENCH_native.json"
        cells = run_native(scale=scale, repeats=args.repeats)
        print(render_native(cells))
        write_native_json(cells, out, scale=scale, repeats=args.repeats)
        print(f"\nwrote {out}")
        return 0 if native_acceptance(cells) else 1
    else:
        from repro.bench import render_ablation, run_ablation

        print(render_ablation(run_ablation(scale=args.scale,
                                           repeats=args.repeats or 3)))
    return 0


def _cmd_corpus(args) -> int:
    from repro.corpus import all_programs, diverging_programs

    if args.diverging:
        for d in diverging_programs():
            print(f"{d.name:20s} {d.notes.splitlines()[0] if d.notes else ''}")
    else:
        for p in all_programs():
            paper = "/".join(c or "-" for c in p.paper)
            print(f"{p.name:15s} paper={paper:22s} {p.notes.splitlines()[0]}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import ServeConfig, serve_main

    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        batch_window_ms=args.batch_window_ms,
        default_fuel=None if args.default_fuel < 0 else args.default_fuel,
        tenant_budget=args.tenant_budget,
        request_timeout=args.request_timeout,
        cache_dir=args.cache_dir, shard_depth=args.shard_depth,
        allow_fault_injection=args.allow_fault_injection,
    )
    try:
        return asyncio.run(serve_main(config))
    except KeyboardInterrupt:
        return 0


def _cmd_fuzz(args) -> int:
    import json

    from repro.fuzz import default_cells, run_fuzz, run_matrix

    cells = default_cells(args.matrix)

    if args.replay:
        from repro.fuzz.shrink import load_regression

        program = load_regression(args.replay)
        result = run_matrix(program, cells=cells, fuel=args.fuel)
        for r in result.cells:
            print(f"{':'.join(r.cell):40s} {r.kind:10s} "
                  f"{r.value if r.value is not None else r.violation or r.error or ''}")
        if result.verdicts:
            print("verdicts:", " ".join(f"{e}={s}"
                                        for e, s in result.verdicts.items()))
        if result.discharge_complete is not None:
            print(f"discharge-complete: {result.discharge_complete}")
        if result.divergences:
            print(f"\n{len(result.divergences)} divergence(s):",
                  file=sys.stderr)
            for d in result.divergences:
                print(f"  [{d.klass}] {d.detail}", file=sys.stderr)
            return 1
        print("\nno divergence: all oracle checks passed")
        return 0

    features = None
    if args.features is not None:
        features = tuple(f for f in args.features.split(",") if f)

    def progress(done, total, report):
        if done % 25 == 0 or done == total:
            print(f"  {done}/{total} programs, "
                  f"{len(report.divergences)} divergence(s)",
                  file=sys.stderr)

    report = run_fuzz(args.n, seed=args.seed, mode=args.mode,
                      matrix=args.matrix, fuel=args.fuel, features=features,
                      shrink=not args.no_shrink, max_shrink=args.max_shrink,
                      progress=progress)

    if args.archive and report.divergences:
        from repro.fuzz import archive_divergence

        for div in report.divergences:
            path = archive_divergence(div)
            print(f"archived {path}", file=sys.stderr)

    payload = report.to_json()
    if args.out:
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"{report.programs} programs "
              f"({', '.join(f'{m}={c}' for m, c in sorted(report.by_mode.items()))}) "
              f"in {report.elapsed:.1f}s "
              f"({report.programs_per_sec:.1f}/s)")
        print(f"verified {report.verified}/{report.verify_expected} expected; "
              f"discharged {report.discharged}/{report.discharge_expected} "
              f"expected")
        if report.divergences:
            print(f"{len(report.divergences)} divergence(s):")
            for d in report.divergences:
                print(f"  [{d.klass}] seed={d.program.seed} "
                      f"mode={d.program.mode}: {d.detail}")
                if d.shrunk is not None:
                    print("    shrunk to "
                          f"{len(d.shrunk)} chars in {d.shrink_steps} steps")
        else:
            print("no divergences: every oracle check passed")
    return 1 if report.divergences else 0


def _cmd_chaos(args) -> int:
    import json

    from repro.serve.chaos import run_campaign

    faults = None
    if args.faults is not None:
        faults = tuple(f for f in args.faults.split(",") if f)

    def progress(msg):
        print(msg, file=sys.stderr)

    try:
        report, failures = run_campaign(
            n=args.n, seed=args.seed, faults=faults,
            workers=args.workers, progress=progress)
    except ValueError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2

    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(f"{report['n']} requests, seed={report['seed']}, "
              f"{sum(report['injected'].values())} faults injected "
              f"in {report['elapsed_s']:.1f}s")
        print("outcomes: " + ", ".join(
            f"{k}={v}" for k, v in sorted(report["outcomes"].items())))
        print(f"client retries: {report['client_retries']}")
        for inv in report["invariants"]:
            mark = "ok " if inv["ok"] else "FAIL"
            detail = f" — {inv['detail']}" if inv["detail"] else ""
            print(f"  [{mark}] {inv['name']}{detail}")
    if failures:
        print(f"{len(failures)} invariant violation(s)", file=sys.stderr)
        return 1
    print("chaos campaign passed: all invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
