"""Size-change termination contracts for ordinary Python functions.

This package transplants the paper's dynamic semantics onto Python
callables: ``@terminating`` plays the role of ``terminating/c``.

>>> from repro.pyterm import terminating, SizeChangeError
>>> @terminating
... def fact(n):
...     return 1 if n == 0 else n * fact(n - 1)
>>> fact(5)
120
>>> @terminating
... def bad(n):
...     return bad(n)          # doctest: +SKIP
>>> bad(1)                     # doctest: +SKIP
SizeChangeError: size-change violation in bad ...
"""

from repro.pyterm.decorator import SizeChangeError, extent_table_depth, terminating
from repro.pyterm.extent import default_include, monitor_extent, monitored
from repro.pyterm.order import PySizeOrder, py_size

__all__ = [
    "terminating",
    "SizeChangeError",
    "PySizeOrder",
    "py_size",
    "extent_table_depth",
    "monitor_extent",
    "monitored",
    "default_include",
]
