"""The ``@terminating`` decorator: ``terminating/c`` for Python functions.

Implementation notes
--------------------

* The size-change table is **extent-scoped**: one table per thread, entries
  saved on call entry and restored in a ``finally`` — the paper's
  "imperative" strategy (Python has no tail-call optimization to break).
* Sibling recursive calls therefore compare against their *parent's*
  arguments, never against each other (e.g. merge-sort's two half-sorted
  branches), exactly like the λSCT table semantics.
* Keyword arguments are normalized into positional order via the function's
  signature, so the graph positions line up with parameter names.
"""

from __future__ import annotations

import functools
import inspect
import threading
from typing import Callable, Optional, Tuple

from repro.sct.errors import SizeChangeViolation
from repro.sct.graph import graph_of_values
from repro.pyterm.order import PySizeOrder


class SizeChangeError(SizeChangeViolation):
    """A Python-level size-change violation (subclass of the embedded
    language's violation so tooling can treat them uniformly)."""


class _Entry:
    __slots__ = ("check_args", "comps", "count", "next_check")

    def __init__(self, check_args, comps, count, next_check):
        self.check_args = check_args
        self.comps = comps
        self.count = count
        self.next_check = next_check


class _ExtentState(threading.local):
    def __init__(self):
        self.table = {}


_STATE = _ExtentState()

_MISSING = object()


def extent_table_depth() -> int:
    """How many functions the current dynamic extent is tracking (useful in
    tests and diagnostics)."""
    return len(_STATE.table)


def terminating(
    fn: Optional[Callable] = None,
    *,
    order=None,
    backoff: bool = False,
    measure: Optional[Callable[[Tuple], Tuple]] = None,
    blame: Optional[str] = None,
    deep: bool = False,
    graphs: str = "sc",
):
    """Assert that ``fn`` is size-change terminating, dynamically.

    Every call to the wrapped function is compared with the previous call in
    the same dynamic extent; if the accumulated size-change graphs admit an
    infinite descent-free iteration, :class:`SizeChangeError` is raised and
    ``blame`` (default: the function's qualified name) is charged.

    Options:

    * ``order`` — a custom partial order object with
      ``compare(old, new) -> {0,1,2}``; default :class:`PySizeOrder`.
    * ``deep`` — use deep (recursive) container sizes instead of ``len``.
    * ``backoff`` — exponential backoff: graphs are built on calls
      1, 2, 4, 8, …, trading detection latency for overhead (§5).
    * ``measure`` — map the argument tuple to a derived tuple before
      comparison (a custom well-founded measure, e.g.
      ``lambda a: (a[1] - a[0],)`` for a counting-up loop).
    * ``blame`` — the party named in violations.
    * ``graphs`` — ``"sc"`` (size-change graphs, the paper's semantics) or
      ``"mc"`` (monotonicity-constraint graphs, the §6.2 extension):
      ``"mc"`` additionally accepts counting-up-to-a-ceiling loops such as
      ``range(lo, hi) → range(lo+1, hi)`` without a ``measure``.

    Usable bare (``@terminating``) or with options
    (``@terminating(backoff=True)``).
    """
    if fn is None:
        return lambda f: terminating(
            f, order=order, backoff=backoff, measure=measure, blame=blame,
            deep=deep, graphs=graphs,
        )
    if graphs not in ("sc", "mc"):
        raise ValueError(f"graphs must be 'sc' or 'mc', got {graphs!r}")

    the_order = order if order is not None else PySizeOrder(deep=deep)
    if graphs == "mc":
        from repro.mc.graph import mc_graph_of_sizes
        from repro.pyterm.order import py_size

        def make_graph(old: tuple, new: tuple):
            return mc_graph_of_sizes([py_size(v, deep) for v in old],
                                     [py_size(v, deep) for v in new])
    else:
        def make_graph(old: tuple, new: tuple):
            return graph_of_values(old, new, the_order)
    party = blame if blame is not None else getattr(fn, "__qualname__", repr(fn))
    try:
        signature = inspect.signature(fn)
        param_names = [
            p.name
            for p in signature.parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
    except (TypeError, ValueError):
        signature = None
        param_names = None

    def _normalize(args: tuple, kwargs: dict) -> tuple:
        if not kwargs:
            return args
        if signature is None:
            return args + tuple(kwargs[k] for k in sorted(kwargs))
        bound = signature.bind(*args, **kwargs)
        bound.apply_defaults()
        return tuple(bound.arguments.values())

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        table = _STATE.table
        prev = table.get(wrapper, _MISSING)
        call_args = _normalize(args, kwargs)
        margs = tuple(measure(call_args)) if measure is not None else call_args
        if prev is _MISSING:
            table[wrapper] = _Entry(margs, frozenset(), 1, 2)
        else:
            table[wrapper] = _advance(prev, margs)
        try:
            return fn(*args, **kwargs)
        finally:
            if prev is _MISSING:
                table.pop(wrapper, None)
            else:
                table[wrapper] = prev

    def _advance(entry: _Entry, margs: tuple) -> _Entry:
        count = entry.count + 1
        if count < entry.next_check:
            return _Entry(entry.check_args, entry.comps, count, entry.next_check)
        g = make_graph(entry.check_args, margs)
        new_comps = {g}
        for c in entry.comps:
            new_comps.add(c.compose(g))
        for c in new_comps:
            if not c.desc_ok():
                raise SizeChangeError(
                    function=getattr(fn, "__qualname__", repr(fn)),
                    prev_args=entry.check_args,
                    new_args=margs,
                    graph=g,
                    composition=c,
                    blame=party,
                    call_count=count,
                    param_names=param_names,
                )
        next_check = count * 2 if backoff else count + 1
        return _Entry(margs, frozenset(new_comps), count, next_check)

    wrapper.__wrapped__ = fn
    wrapper.__sct_terminating__ = True
    return wrapper
