"""The ``@terminating`` decorator: ``terminating/c`` for Python functions.

Implementation notes
--------------------

* The size-change table is **extent-scoped**: one table per thread, entries
  saved on call entry and restored in a ``finally`` — the paper's
  "imperative" strategy (Python has no tail-call optimization to break).
* Sibling recursive calls therefore compare against their *parent's*
  arguments, never against each other (e.g. merge-sort's two half-sorted
  branches), exactly like the λSCT table semantics.
* Keyword arguments and defaults are normalized into full positional
  order via ``signature.bind`` + ``apply_defaults`` — on *every* call
  once the function has defaulted parameters, not just on keyword calls.
  Otherwise a call that leaves a defaulted middle parameter implicit
  would record a shorter argument tuple than one that supplies it, and
  the graph positions (hence the descent evidence) would misalign.
* ``discharge='auto'`` runs the §4 static verifier once, at decoration
  time, on a conservative embedded-language translation of the function
  (:mod:`repro.pyterm.translate`); when the verifier proves termination
  the instrumentation is dropped entirely — the original function is
  returned, stamped ``__sct_discharged__`` — and the certificate is
  cached content-addressed (:mod:`repro.analysis.discharge`) so repeated
  decorations (reloads, subprocesses with a shared on-disk store) skip
  the verifier.  ``discharge='require'`` raises instead of silently
  keeping the monitor.
"""

from __future__ import annotations

import functools
import inspect
import threading
from typing import Callable, Optional, Sequence, Tuple

from repro.sct.errors import SizeChangeViolation
from repro.sct.graph import graph_of_values
from repro.pyterm.order import PySizeOrder


class SizeChangeError(SizeChangeViolation):
    """A Python-level size-change violation (subclass of the embedded
    language's violation so tooling can treat them uniformly)."""


class _Entry:
    __slots__ = ("check_args", "comps", "count", "next_check")

    def __init__(self, check_args, comps, count, next_check):
        self.check_args = check_args
        self.comps = comps
        self.count = count
        self.next_check = next_check


class _ExtentState(threading.local):
    def __init__(self):
        self.table = {}


_STATE = _ExtentState()

_MISSING = object()


def extent_table_depth() -> int:
    """How many functions the current dynamic extent is tracking (useful in
    tests and diagnostics)."""
    return len(_STATE.table)


def terminating(
    fn: Optional[Callable] = None,
    *,
    order=None,
    backoff: bool = False,
    measure: Optional[Callable[[Tuple], Tuple]] = None,
    blame: Optional[str] = None,
    deep: bool = False,
    graphs: str = "sc",
    discharge: Optional[str] = None,
    kinds: Optional[Sequence[str]] = None,
    result_kind: Optional[str] = None,
    cache=None,
):
    """Assert that ``fn`` is size-change terminating, dynamically.

    Every call to the wrapped function is compared with the previous call in
    the same dynamic extent; if the accumulated size-change graphs admit an
    infinite descent-free iteration, :class:`SizeChangeError` is raised and
    ``blame`` (default: the function's qualified name) is charged.

    Options:

    * ``order`` — a custom partial order object with
      ``compare(old, new) -> {0,1,2}``; default :class:`PySizeOrder`.
    * ``deep`` — use deep (recursive) container sizes instead of ``len``.
    * ``backoff`` — exponential backoff: graphs are built on calls
      1, 2, 4, 8, …, trading detection latency for overhead (§5).
    * ``measure`` — map the argument tuple to a derived tuple before
      comparison (a custom well-founded measure, e.g.
      ``lambda a: (a[1] - a[0],)`` for a counting-up loop).
    * ``blame`` — the party named in violations.
    * ``graphs`` — ``"sc"`` (size-change graphs, the paper's semantics) or
      ``"mc"`` (monotonicity-constraint graphs, the §6.2 extension):
      ``"mc"`` additionally accepts counting-up-to-a-ceiling loops such as
      ``range(lo, hi) → range(lo+1, hi)`` without a ``measure``.
    * ``discharge`` — ``'auto'``: statically verify the function once at
      decoration time (via the embedded-language translation) and, on
      success, return the *original* function — zero instrumentation,
      with ``__sct_discharged__ = True``; on failure keep the monitor
      (the refusal reason lands in ``__sct_discharge_reason__``).
      ``'require'`` raises ``ValueError`` when verification fails.
      Verification honors ``kinds`` (per-parameter entry kinds, e.g.
      ``('nat',)`` — defaults to ``'int'``, which rarely proves descent
      under the ``|·|`` order) and ``result_kind`` (the function's
      contract range, §4.2), and is cached content-addressed across
      decorations.
    * ``cache`` — the :class:`~repro.analysis.discharge.VerificationCache`
      certificates go through (injectable for isolation; default: the
      process-wide fallback of ``default_cache()``).

    Usable bare (``@terminating``) or with options
    (``@terminating(backoff=True)``).
    """
    if fn is None:
        return lambda f: terminating(
            f, order=order, backoff=backoff, measure=measure, blame=blame,
            deep=deep, graphs=graphs, discharge=discharge, kinds=kinds,
            result_kind=result_kind, cache=cache,
        )
    if graphs not in ("sc", "mc"):
        raise ValueError(f"graphs must be 'sc' or 'mc', got {graphs!r}")
    if discharge not in (None, "off", "auto", "require"):
        raise ValueError(
            f"discharge must be 'off', 'auto' or 'require', got {discharge!r}")

    discharge_reason = None
    if discharge in ("auto", "require"):
        proven, discharge_reason = _discharge_statically(
            fn, graphs, kinds, result_kind, cache)
        if proven:
            fn.__sct_terminating__ = True
            fn.__sct_discharged__ = True
            fn.__sct_discharge_reason__ = None
            return fn
        if discharge == "require":
            raise ValueError(
                f"@terminating(discharge='require'): cannot statically "
                f"verify {getattr(fn, '__qualname__', fn)!r}: "
                f"{discharge_reason}")

    the_order = order if order is not None else PySizeOrder(deep=deep)
    if graphs == "mc":
        from repro.mc.graph import mc_graph_of_sizes
        from repro.pyterm.order import py_size

        def make_graph(old: tuple, new: tuple):
            return mc_graph_of_sizes([py_size(v, deep) for v in old],
                                     [py_size(v, deep) for v in new])
    else:
        def make_graph(old: tuple, new: tuple):
            return graph_of_values(old, new, the_order)
    party = blame if blame is not None else getattr(fn, "__qualname__", repr(fn))
    try:
        signature = inspect.signature(fn)
        param_names = [
            p.name
            for p in signature.parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
    except (TypeError, ValueError):
        signature = None
        param_names = None
    # A function with defaulted (or keyword-only / var-) parameters must
    # normalize on *every* call: a purely positional call that leaves a
    # defaulted middle parameter implicit would otherwise record a
    # shorter tuple than a call supplying it, shifting graph positions.
    needs_binding = signature is not None and any(
        p.default is not inspect.Parameter.empty
        or p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD, p.KEYWORD_ONLY)
        for p in signature.parameters.values()
    )

    def _normalize(args: tuple, kwargs: dict) -> tuple:
        if not kwargs and not needs_binding:
            return args
        if signature is None:
            return args + tuple(kwargs[k] for k in sorted(kwargs))
        bound = signature.bind(*args, **kwargs)
        bound.apply_defaults()
        return tuple(bound.arguments.values())

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        table = _STATE.table
        prev = table.get(wrapper, _MISSING)
        call_args = _normalize(args, kwargs)
        margs = tuple(measure(call_args)) if measure is not None else call_args
        if prev is _MISSING:
            table[wrapper] = _Entry(margs, frozenset(), 1, 2)
        else:
            table[wrapper] = _advance(prev, margs)
        try:
            return fn(*args, **kwargs)
        finally:
            if prev is _MISSING:
                table.pop(wrapper, None)
            else:
                table[wrapper] = prev

    def _advance(entry: _Entry, margs: tuple) -> _Entry:
        count = entry.count + 1
        if count < entry.next_check:
            return _Entry(entry.check_args, entry.comps, count, entry.next_check)
        g = make_graph(entry.check_args, margs)
        new_comps = {g}
        for c in entry.comps:
            new_comps.add(c.compose(g))
        for c in new_comps:
            if not c.desc_ok():
                raise SizeChangeError(
                    function=getattr(fn, "__qualname__", repr(fn)),
                    prev_args=entry.check_args,
                    new_args=margs,
                    graph=g,
                    composition=c,
                    blame=party,
                    call_count=count,
                    param_names=param_names,
                )
        next_check = count * 2 if backoff else count + 1
        return _Entry(margs, frozenset(new_comps), count, next_check)

    wrapper.__wrapped__ = fn
    wrapper.__sct_terminating__ = True
    wrapper.__sct_discharged__ = False
    wrapper.__sct_discharge_reason__ = discharge_reason
    return wrapper


def _discharge_statically(fn, graphs: str, kinds, result_kind, cache=None):
    """Translate ``fn`` to the embedded language and verify it; returns
    ``(proven, reason_if_not)``.  Certificates go through the injected
    content-addressed ``cache`` (default: the process-wide fallback), so
    re-decorating the same source (module reloads, spawned workers with a
    shared on-disk store) skips the verifier."""
    from repro.analysis.discharge import VerificationCache, default_cache
    from repro.pyterm.translate import Untranslatable, translate_function

    try:
        source, entry, params = translate_function(fn)
    except Untranslatable as exc:
        return False, f"not translatable: {exc}"
    if kinds is None:
        kinds = ("int",) * len(params)
    kinds = tuple(kinds)
    if len(kinds) != len(params):
        return False, (f"{len(params)} parameters but {len(kinds)} kinds "
                       "given")
    result_kinds = {entry: result_kind} if result_kind else None

    from repro.lang.parser import parse_program

    program = parse_program(source, source=f"<pyterm:{entry}>")
    if cache is None:
        cache = default_cache()
    key = VerificationCache.key(source, entry, kinds, result_kinds,
                                f"pyterm-{graphs}")
    certificate = cache.get(key, program)
    if certificate is None:
        if graphs == "mc":
            from repro.mc.static import verify_program_mc as verify
        else:
            from repro.symbolic.verify import verify_program as verify
        verdict = verify(program, entry, kinds, result_kinds=result_kinds)
        certificate = verdict.certificate
        if certificate is None:
            return False, "; ".join(verdict.reasons) or "verifier failure"
        cache.put(key, certificate, program)
    if certificate.complete:
        return True, None
    why = "; ".join(certificate.taint_reasons) or \
        "the collected graphs do not pass the static check"
    return False, f"verification inconclusive: {why}"
