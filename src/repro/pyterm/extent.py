"""Full-extent monitoring: λSCT's *every-application* semantics for Python.

The ``@terminating`` decorator only observes calls to functions that were
explicitly wrapped — the ``λCSCT`` contract semantics.  This module is the
``λSCT`` analogue: inside a :class:`monitor_extent` block **every**
Python-level call is observed through ``sys.setprofile``, so divergence
hiding in *unwrapped* helpers is caught too:

    with monitor_extent():
        main()          # any loop anywhere below main() is monitored

Design notes
------------

* **Keying.**  A profile callback sees frames, not function objects, so
  entries are keyed by the *code object* — all closures of one ``def`` or
  ``lambda`` share an entry.  This is exactly the paper's closure-hashing
  compromise (§5): sound (the table cannot grow without bound), but able
  to produce false positives when distinct closures of the same λ
  alternate.  Use the selective decorator when that precision matters.
* **Extent scoping.**  Like the λSCT table, entries are saved on call
  entry and restored on return/unwind, so sibling calls never compare
  against each other.
* **Filtering.**  Standard-library, site-packages and this library's own
  frames are skipped by default; pass ``include`` to monitor exactly the
  code you care about.  Generator and coroutine frames are skipped (their
  resumption protocol is not a size-change call sequence).
* **Scope.**  ``sys.setprofile`` is per-thread; the extent monitors the
  thread that entered it.  On violation the profiler unwinds with the
  :class:`~repro.pyterm.decorator.SizeChangeError`, and ``__exit__``
  restores the previous profile function.
"""

from __future__ import annotations

import inspect
import os
import sys
import sysconfig
import threading
from typing import Callable, Optional, Tuple

from repro.pyterm.decorator import SizeChangeError
from repro.pyterm.order import PySizeOrder, py_size

_REPRO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_STDLIB = sysconfig.get_paths().get("stdlib", "")
_PURELIB = sysconfig.get_paths().get("purelib", "")

_SKIP_FLAGS = (
    inspect.CO_GENERATOR | inspect.CO_COROUTINE | inspect.CO_ASYNC_GENERATOR
)

# Comprehension frames take a single fresh-iterator argument that no
# well-founded order can relate across calls; any recursion cycle through
# a comprehension also passes through its named enclosing function (a
# comprehension cannot name itself), so skipping them loses no soundness
# — the same argument as the paper's Lemma A.1.
_SKIP_NAMES = frozenset({"<listcomp>", "<setcomp>", "<dictcomp>", "<module>"})

_MISSING = object()


def default_include(code) -> bool:
    """Monitor user code only: skip this library, the standard library,
    installed packages, and synthetic filenames like ``<frozen ...>``."""
    filename = code.co_filename
    if filename.startswith(_REPRO_ROOT):
        return False
    if _STDLIB and filename.startswith(_STDLIB):
        return False
    if _PURELIB and filename.startswith(_PURELIB):
        return False
    if filename.startswith("<frozen"):
        return False
    return True


class _Entry:
    __slots__ = ("check_args", "comps", "count", "next_check")

    def __init__(self, check_args, comps, count, next_check):
        self.check_args = check_args
        self.comps = comps
        self.count = count
        self.next_check = next_check


class monitor_extent:
    """Context manager enforcing size-change termination on every call in
    its dynamic extent (current thread).

    Options:

    * ``include`` — predicate on code objects selecting what to monitor
      (default :func:`default_include`).
    * ``order`` / ``deep`` — the well-founded order on argument values
      (as in :func:`repro.pyterm.terminating`).
    * ``graphs`` — ``"sc"`` (size-change) or ``"mc"`` (monotonicity
      constraints, accepting bounded count-up loops).
    * ``backoff`` — exponential backoff per code object (§5).
    * ``blame`` — the party named in violations (default: the offending
      function's qualified name).
    """

    def __init__(
        self,
        include: Optional[Callable] = None,
        order=None,
        deep: bool = False,
        graphs: str = "sc",
        backoff: bool = False,
        blame: Optional[str] = None,
    ):
        if graphs not in ("sc", "mc"):
            raise ValueError(f"graphs must be 'sc' or 'mc', got {graphs!r}")
        self.include = include if include is not None else default_include
        self.order = order if order is not None else PySizeOrder(deep=deep)
        self.deep = deep
        self.graphs = graphs
        self.backoff = backoff
        self.blame = blame
        self.calls_seen = 0
        self.checks_done = 0
        self.violation: Optional[SizeChangeError] = None
        self._table: dict = {}
        self._undo: dict = {}
        self._previous_profile = None
        self._owner: Optional[int] = None

    # -- graph construction -------------------------------------------------

    def _make_graph(self, old: tuple, new: tuple):
        if self.graphs == "mc":
            from repro.mc.graph import mc_graph_of_sizes

            return mc_graph_of_sizes([py_size(v, self.deep) for v in old],
                                     [py_size(v, self.deep) for v in new])
        from repro.sct.graph import graph_of_values

        return graph_of_values(old, new, self.order)

    # -- the profile hook ------------------------------------------------------

    def _profile(self, frame, event, arg):
        if event == "call":
            code = frame.f_code
            if (code.co_flags & _SKIP_FLAGS or code.co_name in _SKIP_NAMES
                    or not self.include(code)):
                return
            self.calls_seen += 1
            nargs = code.co_argcount
            names = code.co_varnames[:nargs]
            local = frame.f_locals
            args = tuple(local.get(n, _MISSING) for n in names)
            key = code
            prev = self._table.get(key, _MISSING)
            self._undo[id(frame)] = (key, prev)
            if prev is _MISSING:
                self._table[key] = _Entry(args, frozenset(), 1, 2)
            else:
                self._table[key] = self._advance(prev, code, names, args)
        elif event == "return":
            undo = self._undo.pop(id(frame), None)
            if undo is not None:
                key, prev = undo
                if prev is _MISSING:
                    self._table.pop(key, None)
                else:
                    self._table[key] = prev

    def _advance(self, entry: _Entry, code, names, args: tuple) -> _Entry:
        count = entry.count + 1
        if count < entry.next_check:
            return _Entry(entry.check_args, entry.comps, count,
                          entry.next_check)
        self.checks_done += 1
        g = self._make_graph(entry.check_args, args)
        new_comps = {g}
        for c in entry.comps:
            new_comps.add(c.compose(g))
        for c in new_comps:
            if not c.desc_ok():
                violation = SizeChangeError(
                    function=code.co_qualname,
                    prev_args=entry.check_args,
                    new_args=args,
                    graph=g,
                    composition=c,
                    blame=self.blame or code.co_qualname,
                    call_count=count,
                    param_names=list(names),
                )
                self.violation = violation
                raise violation
        next_check = count * 2 if self.backoff else count + 1
        return _Entry(args, frozenset(new_comps), count, next_check)

    # -- context-manager protocol --------------------------------------------------

    def __enter__(self) -> "monitor_extent":
        if self._owner is not None:
            raise RuntimeError("monitor_extent is not reentrant; "
                               "create a new instance per extent")
        self._owner = threading.get_ident()
        self._table = {}
        self._undo = {}
        self._previous_profile = sys.getprofile()
        sys.setprofile(self._profile)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        sys.setprofile(self._previous_profile)
        self._owner = None
        self._table.clear()
        self._undo.clear()
        return False


def monitored(fn: Optional[Callable] = None, **options):
    """Decorator form: run every call of ``fn`` inside a fresh
    :class:`monitor_extent` — λSCT semantics from a single annotation.

        @monitored
        def main(): ...

    Options are those of :class:`monitor_extent`.
    """
    if fn is None:
        return lambda f: monitored(f, **options)

    import functools

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with monitor_extent(**options):
            return fn(*args, **kwargs)

    wrapper.__wrapped__ = fn
    wrapper.__sct_terminating__ = True
    return wrapper
