"""A well-founded partial order on Python values.

Mirrors :mod:`repro.sct.order` for host values:

* ``bool`` — size 1 (checked before ``int``: booleans are ints in Python),
* ``int`` — ``|n|``,
* ``float`` — no size (not well-founded under ``|x| < |y|``); floats only
  ever produce weak (equality) arcs,
* ``str`` / ``bytes`` / ``list`` / ``tuple`` / ``set`` / ``frozenset`` /
  ``dict`` — ``len`` by default, or a deep recursive size with ``deep=True``
  (cycle-safe; cyclic values have no size),
* ``None`` — size 0,
* anything defining ``__sct_size__() -> int`` — that value,
* everything else — size 1 and equality by identity-or-``==``, which makes
  arbitrary objects mutually incomparable (the paper's treatment of
  closures).
"""

from __future__ import annotations

from typing import Optional

NONE = 0
DESC = 1
EQ = 2

_SIZED_CONTAINERS = (str, bytes, list, tuple, set, frozenset, dict)


def py_size(v, deep: bool = False) -> Optional[int]:
    """The natural size of a Python value, or ``None`` when it has none."""
    if v is None:
        return 0
    t = type(v)
    if t is bool:
        return 1
    if t is int:
        return abs(v)
    if t is float:
        return None
    size_hook = getattr(v, "__sct_size__", None)
    if size_hook is not None:
        return int(size_hook())
    if isinstance(v, _SIZED_CONTAINERS):
        if not deep:
            return len(v)
        return _deep_size(v, set())
    return 1


def _deep_size(v, seen: set) -> Optional[int]:
    if v is None:
        return 0
    t = type(v)
    if t is bool:
        return 1
    if t is int:
        return abs(v)
    if t is float:
        return None
    if isinstance(v, (str, bytes)):
        return len(v)
    if isinstance(v, (list, tuple, set, frozenset)):
        if id(v) in seen:
            return None  # cyclic: no well-founded size
        seen.add(id(v))
        total = 1
        for item in v:
            s = _deep_size(item, seen)
            if s is None:
                return None
            total += s
        seen.discard(id(v))
        return total
    if isinstance(v, dict):
        if id(v) in seen:
            return None
        seen.add(id(v))
        total = 1
        for k, val in v.items():
            sk = _deep_size(k, seen)
            sv = _deep_size(val, seen)
            if sk is None or sv is None:
                return None
            total += sk + sv
        seen.discard(id(v))
        return total
    size_hook = getattr(v, "__sct_size__", None)
    if size_hook is not None:
        return int(size_hook())
    return 1


def _safe_eq(a, b) -> bool:
    if a is b:
        return True
    try:
        return bool(a == b)
    except Exception:
        return False


class PySizeOrder:
    """``compare(old, new)``: :data:`DESC`, :data:`EQ` or :data:`NONE`."""

    def __init__(self, deep: bool = False):
        self.deep = deep

    def compare(self, old, new) -> int:
        if new is old:
            return EQ
        new_size = py_size(new, self.deep)
        old_size = py_size(old, self.deep)
        if new_size is not None and old_size is not None and new_size < old_size:
            return DESC
        if new_size == old_size and _safe_eq(new, old):
            return EQ
        return NONE

    def __repr__(self) -> str:
        return f"PySizeOrder(deep={self.deep})"
