"""Conservative Python → embedded-language translation for discharge.

``@terminating(discharge='auto')`` wants to run the §4 verifier on a
*Python* function.  Rather than re-implement symbolic execution for
Python, this module translates a restricted — integer-valued, purely
functional, self-recursive — subset into the embedded language, where the
existing pipeline (engine → LJB → certificate) applies unchanged.  The
translation is the trusted step, so it refuses (raising
:class:`Untranslatable`) anything whose Scheme rendering is not
observably equivalent:

* parameters: plain positional, no defaults/varargs/keyword-only;
* statements: ``return``, and ``if``/``elif``/``else`` trees (a bare
  ``if`` may be followed by further statements, which become its else
  branch; every path must end in ``return``);
* expressions: parameter reads, ``int``/``bool`` constants, ``+ - *``
  (``//`` → ``quotient``, ``%`` → ``modulo`` — both sound here: the
  verifier keeps division uninterpreted, over-approximating either
  rounding convention), single comparisons, ``and``/``or``/``not``,
  conditional expressions, and positional self-calls;
* truthiness: an integer-typed test compiles to ``(not (= t 0))`` —
  Python's ``if n:`` — because the embedded language treats every
  integer (including 0) as true.

Everything else stays dynamically monitored; refusal is the sound
default.
"""

from __future__ import annotations

import ast as pyast
import inspect
import textwrap
from typing import Tuple

#: Python binary operators with exact embedded-language counterparts.
_BINOPS = {
    pyast.Add: "+",
    pyast.Sub: "-",
    pyast.Mult: "*",
    pyast.FloorDiv: "quotient",
    pyast.Mod: "modulo",
}

_CMPOPS = {
    pyast.Eq: "=",
    pyast.Lt: "<",
    pyast.LtE: "<=",
    pyast.Gt: ">",
    pyast.GtE: ">=",
}


class Untranslatable(Exception):
    """The function falls outside the translatable subset (stay monitored)."""


class _Translator:
    def __init__(self, fn_name: str, params: Tuple[str, ...]):
        self.fn_name = fn_name
        self.params = set(params)

    # -- statements -----------------------------------------------------------

    def block(self, stmts) -> str:
        """A statement suffix (function body or branch) → one expression;
        every path through it must return."""
        if not stmts:
            raise Untranslatable("a control path falls off the end "
                                 "(no return)")
        head, rest = stmts[0], stmts[1:]
        if isinstance(head, pyast.Return):
            if head.value is None:
                raise Untranslatable("bare `return` (no value)")
            # Dead statements after a return don't affect the value.
            return self.expr(head.value)[0]
        if isinstance(head, pyast.If):
            test = self.test(head.test)
            then = self.block(head.body)
            if head.orelse and rest:
                raise Untranslatable("an if with both an else branch and "
                                     "trailing statements")
            els = self.block(head.orelse or rest)
            return f"(if {test} {then} {els})"
        raise Untranslatable(
            f"unsupported statement {type(head).__name__}")

    # -- expressions ----------------------------------------------------------

    def test(self, node) -> str:
        """An expression in boolean position; ints get Python truthiness."""
        code, kind = self.expr(node)
        if kind == "int":
            return f"(not (= {code} 0))"
        return code

    def expr(self, node) -> Tuple[str, str]:
        """→ ``(code, kind)`` with kind ∈ {'int', 'bool'}."""
        if isinstance(node, pyast.Constant):
            v = node.value
            if v is True:
                return "#t", "bool"
            if v is False:
                return "#f", "bool"
            if type(v) is int:
                return str(v), "int"
            raise Untranslatable(f"unsupported constant {v!r}")
        if isinstance(node, pyast.Name):
            if node.id in self.params:
                return node.id, "int"
            raise Untranslatable(f"free variable {node.id!r}")
        if isinstance(node, pyast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise Untranslatable(
                    f"unsupported operator {type(node.op).__name__}")
            left, _ = self.expr(node.left)
            right, _ = self.expr(node.right)
            return f"({op} {left} {right})", "int"
        if isinstance(node, pyast.UnaryOp):
            if isinstance(node.op, pyast.USub):
                operand, _ = self.expr(node.operand)
                return f"(- 0 {operand})", "int"
            if isinstance(node.op, pyast.Not):
                return f"(not {self.test(node.operand)})", "bool"
            raise Untranslatable(
                f"unsupported unary {type(node.op).__name__}")
        if isinstance(node, pyast.Compare):
            if len(node.ops) != 1:
                raise Untranslatable("chained comparison")
            op = type(node.ops[0])
            left, _ = self.expr(node.left)
            right, _ = self.expr(node.comparators[0])
            if op in _CMPOPS:
                return f"({_CMPOPS[op]} {left} {right})", "bool"
            if op is pyast.NotEq:
                return f"(not (= {left} {right}))", "bool"
            raise Untranslatable(f"unsupported comparison {op.__name__}")
        if isinstance(node, pyast.BoolOp):
            op = "and" if isinstance(node.op, pyast.And) else "or"
            parts = " ".join(self.test(v) for v in node.values)
            return f"({op} {parts})", "bool"
        if isinstance(node, pyast.IfExp):
            test = self.test(node.test)
            then, k1 = self.expr(node.body)
            els, k2 = self.expr(node.orelse)
            return f"(if {test} {then} {els})", \
                k1 if k1 == k2 else "int"
        if isinstance(node, pyast.Call):
            fn = node.func
            if not (isinstance(fn, pyast.Name) and fn.id == self.fn_name
                    and fn.id not in self.params):
                raise Untranslatable(
                    "call to something other than the function itself")
            if node.keywords:
                raise Untranslatable("keyword arguments in a self-call")
            args = " ".join(self.expr(a)[0] for a in node.args)
            return f"({self.fn_name} {args})", "int"
        raise Untranslatable(
            f"unsupported expression {type(node).__name__}")


def translate_function(fn) -> Tuple[str, str, Tuple[str, ...]]:
    """``fn`` → ``(embedded source, entry name, parameter names)``.

    Raises :class:`Untranslatable` for anything outside the subset —
    including functions whose source is unavailable (builtins, REPL
    lambdas, C extensions)."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise Untranslatable(f"no source available: {exc}") from None
    try:
        module = pyast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - dedent should suffice
        raise Untranslatable(f"source does not parse: {exc}") from None
    if len(module.body) != 1 or \
            not isinstance(module.body[0], pyast.FunctionDef):
        raise Untranslatable("expected a single plain function definition")
    fdef = module.body[0]
    args = fdef.args
    if (args.vararg or args.kwarg or args.kwonlyargs or args.defaults
            or args.kw_defaults or args.posonlyargs):
        raise Untranslatable("only plain positional parameters translate")
    params = tuple(a.arg for a in args.args)
    if not params:
        raise Untranslatable("nullary functions have no size-change arcs")
    name = fdef.name
    body = _Translator(name, params).block(fdef.body)
    scheme = f"(define ({name} {' '.join(params)})\n  {body})\n"
    return scheme, name, params
