"""Proving size-change arcs between symbolic values (§4.1).

``relate(old, new, pc, solver)`` decides how a callee argument (``new``)
relates to a caller entry value (``old``) under the path condition:

* strict (``↓``) when the solver proves ``|new| < |old|`` (with sign
  analysis to eliminate the absolute values, as in §4.2) or when ``new`` is
  a proved substructure of ``old``;
* weak (``↓=``) when the values are identical or proved equal;
* no arc otherwise — always the safe default (omitting arcs only loses
  evidence, §2.1).
"""

from __future__ import annotations

from typing import Optional

from repro.sct.order import DESC, EQ, NONE, SizeOrder
from repro.solver.interface import Solver
from repro.solver.linear import LinExpr, eq as eq_atom, ge, lt
from repro.symbolic.pathcond import K_INT, K_NIL, K_PAIR, PathCond
from repro.symbolic.values import SExpr, STest, SVar, is_symbolic
from repro.values.values import NIL, Closure, Pair, Prim

_ZERO = LinExpr.constant(0)
_CONCRETE_ORDER = SizeOrder()


def as_linexpr(v, pc: PathCond) -> Optional[LinExpr]:
    """View ``v`` as an integer term if its kind allows it."""
    if type(v) is int:
        return LinExpr.constant(v)
    if type(v) is SExpr:
        return v.expr
    if type(v) is SVar:
        kind = pc.kind_of(v.name)
        if kind in (None, K_INT):
            return LinExpr.var(v.name)
    return None


def _nonneg_form(e: LinExpr, pc: PathCond, solver: Solver) -> Optional[LinExpr]:
    """Return a term provably equal to ``|e|``, or None if the sign is
    unknown."""
    if pc.entails(solver, ge(e, _ZERO)):
        return e
    if pc.entails(solver, ge(_ZERO, e)):
        return e.scale(-1)
    return None


def _pair_root(v, pc: PathCond) -> Optional[str]:
    """The heap node name of ``v`` when it denotes a symbolic pair."""
    if type(v) is SVar and pc.kind_of(v.name) in (K_PAIR, None):
        return v.name
    return None


def relate(old, new, pc: PathCond, solver: Solver) -> int:
    """DESC / EQ / NONE for (old → new), mirroring ``order.compare``."""
    # Identity & concrete fast paths.
    if new is old:
        return EQ
    if not is_symbolic(old) and not is_symbolic(new) and _is_ground(old) and _is_ground(new):
        return _CONCRETE_ORDER.compare(old, new)
    if isinstance(old, (Closure, Prim)) or isinstance(new, (Closure, Prim)):
        return EQ if new is old else NONE

    # Substructure descent on symbolic pairs.
    old_node = _pair_root(old, pc) if type(old) is SVar else None
    if old_node is not None and pc.kind_of(old_node) == K_PAIR:
        if new is NIL:
            return DESC  # size(nil) = 0 < size(pair)
        if type(new) is SVar:
            if pc.kind_of(new.name) == K_NIL:
                return DESC
            if pc.descends_to(new.name, old_node):
                return DESC
        if type(new) is SExpr:
            names = list(new.expr.variables())
            if (
                len(names) == 1
                and not new.expr.const
                and new.expr.coeffs[names[0]] == 1
                and pc.descends_to(names[0], old_node)
            ):
                return DESC

    # Integer reasoning with |·| elimination.
    old_e = as_linexpr(old, pc)
    new_e = as_linexpr(new, pc)
    if old_e is not None and new_e is not None:
        if old_e == new_e or pc.entails(solver, eq_atom(new_e, old_e)):
            return EQ
        old_abs = _nonneg_form(old_e, pc, solver)
        new_abs = _nonneg_form(new_e, pc, solver)
        if old_abs is not None and new_abs is not None:
            if pc.entails(solver, lt(new_abs, old_abs)):
                return DESC
        return NONE

    # Same symbolic variable handled by identity above; different unknowns
    # are incomparable.
    return NONE


def _is_ground(v) -> bool:
    """True when no symbolic value occurs inside ``v``."""
    stack = [v]
    while stack:
        x = stack.pop()
        if is_symbolic(x):
            return False
        if type(x) is Pair:
            stack.append(x.car)
            stack.append(x.cdr)
    return True
