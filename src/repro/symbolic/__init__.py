"""Higher-order symbolic execution for static termination checking (§4).

The engine extends the operational semantics with symbolic values and path
conditions (Fig. 8), explores each reachable function body once per entry
abstraction, and — at every closure call — records a size-change graph edge
whose arcs are *proved* by the solver under the current path condition.
Phase 2 (:mod:`repro.analysis.ljb`) closes the resulting multigraph under
composition and checks the size-change principle, exactly as in §4.2.
"""

from repro.symbolic.values import SExpr, STest, SVar, fresh_name
from repro.symbolic.pathcond import PathCond
from repro.symbolic.verify import Verdict, verify_program, verify_source

__all__ = [
    "SVar",
    "SExpr",
    "STest",
    "fresh_name",
    "PathCond",
    "Verdict",
    "verify_program",
    "verify_source",
]
