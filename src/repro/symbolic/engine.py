"""The symbolic engine: path-forking evaluation with per-entry-abstraction
summaries, emitting size-change edges at every closure call.

Analysis shape (the paper's §4 made concrete):

1. Top-level definitions evaluate symbolically (deterministically in
   practice: λs become closures, tables become hash values).
2. The entry function is called on fresh symbolic arguments constrained by
   the declared preconditions (§4.2: "symbolic natural numbers m and n").
3. Every closure call inside a function body records an edge
   ``caller-label → callee-label`` whose graph relates the caller's entry
   values to the callee's arguments, with arcs proved by the solver.
4. The callee is *summarized*: analyzed once per entry abstraction
   (per-argument kind descriptors — the AAM-style finitization), and the
   call returns an opaque unknown.  Recursion therefore terminates; the
   SCP is then checked on the edge multigraph by phase 2.

Incompleteness is tracked, never hidden: havocked state, applications of
values the analysis lost, and exhausted budgets all mark the analysis
*incomplete*, which downgrades the final verdict to UNKNOWN even when the
collected graphs satisfy the size-change principle.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.lang import ast
from repro.lang.prims import PRIMITIVES
from repro.lang.program import Program, TopDefine
from repro.sct.graph import SCGraph, STRICT, WEAK
from repro.sct.order import DESC, EQ
from repro.solver.interface import Solver
from repro.solver.linear import LinExpr, ge
from repro.symbolic.arcs import relate
from repro.symbolic.pathcond import K_FUN, K_INT, K_PAIR, PathCond
from repro.symbolic.prims_model import PrimModels
from repro.symbolic.values import LOST, OPPONENT, SExpr, STest, SVar, fresh_name, is_symbolic
from repro.values.values import NIL, VOID, Closure, HashValue, Pair, Prim, TermWrapped

_ZERO = LinExpr.constant(0)

Result = List[Tuple[object, PathCond]]


class Budget:
    """Exploration limits; exceeding any of them flags incompleteness."""

    def __init__(self, max_paths_per_summary=4000, max_summaries=400,
                 max_atoms=120):
        self.max_paths_per_summary = max_paths_per_summary
        self.max_summaries = max_summaries
        self.max_atoms = max_atoms


class SymEnv:
    """A chain of symbolic ribs over the global definitions."""

    __slots__ = ("bindings", "parent")

    def __init__(self, bindings: dict, parent):
        self.bindings = bindings
        self.parent = parent

    def lookup(self, name):
        env = self
        while isinstance(env, SymEnv):
            if name in env.bindings:
                return env.bindings[name]
            env = env.parent
        return env.get(name)  # the global dict-like


class Globals:
    def __init__(self, bindings: dict):
        self.bindings = bindings

    def get(self, name):
        if name in self.bindings:
            return self.bindings[name]
        if name in PRIMITIVES:
            return PRIMITIVES[name]
        raise _Unbound(name)


class _Unbound(Exception):
    def __init__(self, name):
        self.name = name


class Frame:
    """The function summary being analyzed: its λ label, entry values, and
    parameter names (the arc sources of emitted edges)."""

    __slots__ = ("label", "entry_values", "param_names", "fn_name")

    def __init__(self, label, entry_values, param_names, fn_name):
        self.label = label
        self.entry_values = entry_values
        self.param_names = param_names
        self.fn_name = fn_name


class Engine:
    #: Which evidence family the engine records on call edges; the
    #: discharge pipeline uses it to pick the matching phase-2 check.
    evidence_kind = "sc"

    def __init__(self, program: Program, budget: Optional[Budget] = None,
                 result_kinds: Optional[Dict[str, str]] = None,
                 include_prelude: bool = True):
        self.program = program
        self.solver = Solver()
        self.prims = PrimModels(self.solver)
        self.budget = budget or Budget()
        # Contract ranges: function name → result kind ('nat'/'int'/...).
        # §4.2 relies on knowing ack's result is a natural number; in the
        # paper this information comes from the function's contract.
        self.result_kinds = dict(result_kinds or {})
        self.edges: Dict[Tuple[int, int], Set[SCGraph]] = {}
        self.label_names: Dict[int, str] = {}
        self.label_params: Dict[int, List[str]] = {}
        self.incomplete: List[str] = []
        # Discharge taint (see repro.analysis.discharge): incompleteness
        # always taints, and some analysis events taint *discharge* without
        # downgrading the verdict — applying an opponent-supplied opaque
        # function is sound for verification (the opponent's terminating/c
        # obligation, per soft-contract blame semantics) but means unseen
        # re-entrant calls could reach any label with novel arguments, so
        # no label may drop its residual check.  ``tainted_labels`` carries
        # per-label taint (closed forward over call edges by the
        # certificate computation); every taint source known today is
        # global, so in practice ``discharge_unsafe`` drives the outcome.
        self.discharge_unsafe: List[str] = []
        self.tainted_labels: Set[int] = set()
        self.entry_label: Optional[int] = None
        self.entry_kinds: Tuple[str, ...] = ()
        self.summaries_done: Set[Tuple] = set()
        self.worklist = deque()
        self._paths_used = 0
        self.globals = Globals({})
        self._volatile = self._collect_volatile()
        if include_prelude:
            self._load_libraries()
        self._init_globals()

    # -- setup ----------------------------------------------------------------------

    def _collect_volatile(self) -> Set:
        """Names assigned by set! anywhere: reads of those havoc."""
        names = set()
        for node in self.program.iter_nodes():
            if node.kind == ast.K_SET:
                names.add(node.name)
        return names

    def _load_libraries(self) -> None:
        """Bind the prelude and the contract library, so user programs that
        call ``map``/``foldr``/``contract``/... can be analyzed.  Library
        definitions are λ-bodies: evaluating them is deterministic and
        builds no summaries until they are actually applied."""
        from repro.lang.libraries import contracts_program, prelude_program

        # Library loading is setup, not analysis: exempt it from the
        # user's path budget and reset the counter afterwards.  The parses
        # are the process-shared ones (repro.lang.libraries), so library λ
        # labels here coincide with the labels the evaluator's prelude
        # closures carry — a discharge certificate covering ``map`` names
        # the same λ the monitor would instrument.
        saved = self.budget.max_paths_per_summary
        self.budget.max_paths_per_summary = 10 ** 9
        try:
            for library in (prelude_program(), contracts_program()):
                self._define_forms(library.forms)
        finally:
            self.budget.max_paths_per_summary = saved
            self._paths_used = 0

    def _init_globals(self) -> None:
        self._define_forms(self.program.forms)

    def _define_forms(self, forms) -> None:
        pc = PathCond()
        for form in forms:
            if not isinstance(form, TopDefine):
                continue  # top-level workload expressions are not analyzed
            results = self.eval(form.expr, SymEnv({}, self.globals), pc, None)
            if len(results) == 1:
                value, _ = results[0]
            else:
                value = self._lost("global")
            if isinstance(value, Closure) and value.name is None:
                value.name = form.name.name
            self.globals.bindings[form.name] = value

    # -- helpers -----------------------------------------------------------------------

    def _lost(self, why: str) -> SVar:
        return SVar(fresh_name("lost"), origin=LOST)

    def note_incomplete(self, reason: str) -> None:
        if reason not in self.incomplete:
            self.incomplete.append(reason)

    def note_discharge_unsafe(self, reason: str) -> None:
        """Record a reason static discharge of the dynamic checks is
        blocked even though the verification verdict stands."""
        if reason not in self.discharge_unsafe:
            self.discharge_unsafe.append(reason)

    def certificate(self, max_graphs: int = 20000):
        """The per-λ-label :class:`~repro.analysis.discharge.
        DischargeCertificate` for this analysis (call after :meth:`run`)."""
        from repro.analysis.discharge import certificate_from_engine

        return certificate_from_engine(self, max_graphs=max_graphs)

    # -- evaluation ----------------------------------------------------------------------

    def eval(self, expr: ast.Node, env, pc: PathCond, frame: Optional[Frame]) -> Result:
        self._paths_used += 1
        if self._paths_used > self.budget.max_paths_per_summary:
            self.note_incomplete("path budget exceeded")
            return [(self._lost("budget"), pc)]
        k = expr.kind
        if k == ast.K_LIT:
            return [(expr.value, pc)]
        if k == ast.K_VAR:
            try:
                v = env.lookup(expr.name)
            except _Unbound:
                return []  # unbound: run-time error path
            if expr.name in self._volatile:
                return [(self._lost("volatile read"), pc)]
            return [(v, pc)]
        if k == ast.K_LAM:
            return [(Closure(expr, env), pc)]
        if k == ast.K_IF:
            return self._eval_if(expr, env, pc, frame)
        if k == ast.K_APP:
            return self._eval_app(expr, env, pc, frame)
        if k == ast.K_LET:
            return self._eval_let(expr, env, pc, frame)
        if k == ast.K_LETREC:
            return self._eval_letrec(expr, env, pc, frame)
        if k == ast.K_BEGIN:
            return self._eval_begin(expr, env, pc, frame)
        if k == ast.K_SET:
            return self._eval_set(expr, env, pc, frame)
        if k == ast.K_TERMC:
            return self.eval(expr.expr, env, pc, frame)
        raise AssertionError(f"unknown node kind {k}")

    def _eval_seq(self, exprs, env, pc, frame) -> List[Tuple[List, PathCond]]:
        """Evaluate expressions left-to-right, forking; returns value lists."""
        acc: List[Tuple[List, PathCond]] = [([], pc)]
        for e in exprs:
            nxt: List[Tuple[List, PathCond]] = []
            for vals, p in acc:
                for v, p2 in self.eval(e, env, p, frame):
                    nxt.append((vals + [v], p2))
            acc = nxt
            if not acc:
                return []
        return acc

    def _eval_if(self, expr, env, pc, frame) -> Result:
        out: Result = []
        for tv, p in self.eval(expr.test, env, pc, frame):
            for truthy, p2 in self._split_test(tv, p):
                branch = expr.then if truthy else expr.els
                out.extend(self.eval(branch, env, p2, frame))
        return out

    def _split_test(self, tv, pc) -> List[Tuple[bool, PathCond]]:
        if type(tv) is STest:
            out = []
            p_true = pc.assume(tv.atom)
            if p_true.feasible(self.solver):
                out.append((True, p_true))
            p_false = pc
            for d in tv.atom.negate():
                p_false = p_false.assume(d)
            if p_false.feasible(self.solver):
                out.append((False, p_false))
            return out
        if type(tv) is SVar:
            kind = pc.kind_of(tv.name)
            if kind in (K_INT, K_PAIR, K_FUN):
                return [(True, pc)]  # every non-#f value is true
            if kind == "nil":
                return [(True, pc)]  # '() is true in Scheme
            return [(True, pc), (False, pc)]
        if type(tv) is SExpr:
            return [(True, pc)]
        return [(tv is not False, pc)]

    def _eval_app(self, expr, env, pc, frame) -> Result:
        out: Result = []
        for fvals, p in self._eval_seq((expr.fn,) + expr.args, env, pc, frame):
            fn, args = fvals[0], fvals[1:]
            out.extend(self.apply(fn, args, p, frame))
        return out

    def _eval_let(self, expr, env, pc, frame) -> Result:
        out: Result = []
        for vals, p in self._eval_seq(expr.rhss, env, pc, frame):
            new_env = SymEnv(dict(zip(expr.names, vals)), env)
            out.extend(self.eval(expr.body, new_env, p, frame))
        return out

    def _eval_letrec(self, expr, env, pc, frame) -> Result:
        new_env = SymEnv({}, env)
        acc: List[PathCond] = [pc]
        for name, rhs in zip(expr.names, expr.rhss):
            nxt = []
            for p in acc:
                results = self.eval(rhs, new_env, p, frame)
                for v, p2 in results[:1]:  # letrec RHSs are λs: deterministic
                    if isinstance(v, Closure) and v.name is None:
                        v.name = name.name
                    new_env.bindings[name] = v
                    nxt.append(p2)
                if len(results) > 1:
                    new_env.bindings[name] = self._lost("nondet letrec rhs")
            acc = nxt
            if not acc:
                return []
        out: Result = []
        for p in acc:
            out.extend(self.eval(expr.body, new_env, p, frame))
        return out

    def _eval_begin(self, expr, env, pc, frame) -> Result:
        results: Result = [(VOID, pc)]
        for e in expr.body:
            nxt: Result = []
            for _v, p in results:
                nxt.extend(self.eval(e, env, p, frame))
            results = nxt
            if not results:
                return []
        return results

    def _eval_set(self, expr, env, pc, frame) -> Result:
        out: Result = []
        for _v, p in self.eval(expr.expr, env, pc, frame):
            out.append((VOID, p))
        # The assigned variable is volatile: all reads havoc (sound).
        return out

    # -- application ------------------------------------------------------------------------

    def apply(self, fn, args, pc: PathCond, frame: Optional[Frame]) -> Result:
        while type(fn) is TermWrapped:
            fn = fn.closure
        if isinstance(fn, Prim):
            if not fn.accepts(len(args)):
                return []
            if fn.name in ("unbox",):
                return [(self._lost("unbox"), pc)]
            if fn.name in ("box", "set-box!"):
                return [(VOID if fn.name == "set-box!" else _BOX_TOKEN, pc)]
            return self.prims.apply(fn, list(args), pc)
        if isinstance(fn, Closure):
            return self._apply_closure(fn, args, pc, frame)
        if type(fn) is SVar:
            refined = pc.refine(fn.name, K_FUN)
            if refined is None:
                return []
            if fn.origin == LOST:
                self.note_incomplete(
                    "applied a function value the analysis lost track of"
                )
            else:
                self.note_discharge_unsafe(
                    "applied an opponent-supplied opaque function: its "
                    "unseen calls could re-enter any λ, so every dynamic "
                    "check stays (the terminating/c obligation keeps the "
                    "verdict itself sound)"
                )
            result = SVar(fresh_name("app"), origin=fn.origin)
            return [(result, refined)]
        return []  # applying a non-procedure: error path

    def _apply_closure(self, clo: Closure, args, pc, frame) -> Result:
        label = clo.lam.label
        self.label_names.setdefault(label, clo.describe())
        self.label_params.setdefault(
            label, [p.name for p in clo.lam.params]
        )
        if len(args) != len(clo.lam.params):
            return []  # arity error path
        if frame is not None:
            self._record_edge(frame, label, args, pc)
        self._enqueue_summary(clo, args, pc)
        result_kind = self.result_kinds.get(clo.name) if clo.name else None
        ret = SVar(fresh_name("ret"), origin=LOST)
        if result_kind in ("nat", "int"):
            pc = pc.refine(ret.name, K_INT)
            if result_kind == "nat":
                pc = pc.assume(ge(LinExpr.var(ret.name), _ZERO))
        return [(ret, pc)]

    def _record_edge(self, frame: Frame, callee_label: int, args, pc) -> None:
        arcs = []
        for i, old in enumerate(frame.entry_values):
            for j, new in enumerate(args):
                r = relate(old, new, pc, self.solver)
                if r == DESC:
                    arcs.append((i, STRICT, j))
                elif r == EQ:
                    arcs.append((i, WEAK, j))
        key = (frame.label, callee_label)
        self.edges.setdefault(key, set()).add(SCGraph(arcs))

    # -- summaries ----------------------------------------------------------------------------

    def _descriptor(self, v, pc) -> Tuple:
        if isinstance(v, Closure):
            return ("clo", v.lam.label)
        if isinstance(v, Prim):
            return ("prim", v.name)
        if type(v) is bool:
            return ("any",)
        if type(v) is int:
            return ("nat",) if v >= 0 else ("int",)
        if v is NIL:
            return ("nil",)
        if type(v) is Pair:
            return ("pair",)
        if type(v) is SExpr:
            if pc.entails(self.solver, ge(v.expr, _ZERO)):
                return ("nat",)
            return ("int",)
        if type(v) is SVar:
            kind = pc.kind_of(v.name)
            if kind == K_INT:
                if pc.entails(self.solver, ge(LinExpr.var(v.name), _ZERO)):
                    return ("nat",)
                return ("int",)
            if kind in (K_PAIR,):
                return ("pair",)
            if kind == "nil":
                return ("nil",)
            if kind == K_FUN:
                return ("fun",)
            return ("any",)
        return ("any",)

    def instantiate(self, kind: Tuple, rep, pc: PathCond):
        """Fresh entry value for a descriptor; ``rep`` is the call-site
        representative (used for closures/prims)."""
        tag = kind[0]
        if tag == "clo" or tag == "prim":
            return rep, pc
        if tag == "nil":
            return NIL, pc
        if tag == "nat":
            v = SVar(fresh_name("n"))
            pc = pc.refine(v.name, K_INT).assume(ge(LinExpr.var(v.name), _ZERO))
            return v, pc
        if tag == "int":
            v = SVar(fresh_name("i"))
            return v, pc.refine(v.name, K_INT)
        if tag == "pair":
            v = SVar(fresh_name("l"))
            return v, pc.refine(v.name, K_PAIR)
        if tag == "fun":
            v = SVar(fresh_name("f"))
            return v, pc.refine(v.name, K_FUN)
        return SVar(fresh_name("a")), pc

    def _enqueue_summary(self, clo: Closure, args, pc) -> None:
        desc = tuple(self._descriptor(a, pc) for a in args)
        key = (clo.lam.label, desc)
        if key in self.summaries_done:
            return
        if len(self.summaries_done) >= self.budget.max_summaries:
            self.note_incomplete("summary budget exceeded")
            return
        self.summaries_done.add(key)
        self.worklist.append((clo, desc, args))

    def analyze_summary(self, clo: Closure, desc, reps) -> None:
        pc = PathCond()
        entry_values = []
        for kind, rep in zip(desc, reps):
            v, pc = self.instantiate(kind, rep, pc)
            entry_values.append(v)
        env = SymEnv(dict(zip(clo.lam.params, entry_values)), clo.env)
        frame = Frame(clo.lam.label, entry_values,
                      [p.name for p in clo.lam.params], clo.describe())
        self._paths_used = 0
        self.eval(clo.lam.body, env, pc, frame)

    def run(self, entry_clo: Closure, entry_kinds: List[str]) -> None:
        """Seed with the entry function on precondition-constrained symbols
        and drain the summary worklist."""
        kind_map = {"nat": ("nat",), "int": ("int",), "list": ("any",),
                    "pair": ("pair",), "any": ("any",), "fun": ("fun",),
                    "nil": ("nil",)}
        desc = tuple(kind_map.get(k, ("any",)) for k in entry_kinds)
        key = (entry_clo.lam.label, desc)
        self.entry_label = entry_clo.lam.label
        self.entry_kinds = tuple(entry_kinds)
        self.summaries_done.add(key)
        self.label_names.setdefault(entry_clo.lam.label, entry_clo.describe())
        self.label_params.setdefault(
            entry_clo.lam.label, [p.name for p in entry_clo.lam.params]
        )
        self.worklist.append((entry_clo, desc, [None] * len(desc)))
        while self.worklist:
            clo, desc, reps = self.worklist.popleft()
            self.analyze_summary(clo, desc, reps)


# Box contents are never tracked: reading one is a havoc (see `apply`).
_BOX_TOKEN = SVar("box-token", origin=LOST)
