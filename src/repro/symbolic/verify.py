"""The static termination verifier (§4): symbolic execution + LJB phase 2.

``verify_program(program, entry, kinds)`` answers:

* ``VERIFIED`` — every reachable closure maintains the size-change
  property on all symbolic paths, with nothing havocked along the way that
  could hide a loop: calls to this entry (satisfying the preconditions)
  terminate.
* ``UNKNOWN`` — either the collected graphs violate the SCP (with a
  witness: the idempotent, descent-free composition), or the analysis was
  incomplete (lost function values were applied, budgets ran out, ...).

Note the asymmetry, inherited from the paper: the verifier never claims
nontermination — a dynamic run decides that (§5.1.2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.anchors import explain_termination
from repro.analysis.ljb import scp_check  # noqa: F401  (re-export; reference impl)
from repro.analysis.witness import scp_check_with_witness
from repro.lang.parser import parse_program
from repro.lang.program import Program
from repro.sexp.datum import intern
from repro.symbolic.engine import Budget, Engine
from repro.values.values import Closure


class Verdict:
    VERIFIED = "verified"
    UNKNOWN = "unknown"

    def __init__(self, status: str, reasons: List[str], engine: Optional[Engine] = None,
                 witness=None, witness_function: Optional[str] = None,
                 witness_path: Optional[str] = None,
                 explanation: Optional[List[str]] = None,
                 certificate=None):
        self.status = status
        self.reasons = reasons
        self.engine = engine
        self.witness = witness
        self.witness_function = witness_function
        # Rendered multipath "f →{g}→ h →{g'}→ f" whose composition is the
        # witness graph (see repro.analysis.witness).
        self.witness_path = witness_path
        # Positive certificate for VERIFIED verdicts: per-function anchor
        # lines from repro.analysis.anchors.
        self.explanation = explanation or []
        self._certificate = certificate

    @property
    def certificate(self):
        """The discharge certificate (:mod:`repro.analysis.discharge`):
        per-λ-label SKIP/MONITOR decisions the dynamic layers consume.
        Available whenever the engine analyzed an entry, whatever the
        verdict — an UNKNOWN verdict can still discharge the λs it did
        prove.  Computed lazily (it re-closes the reachable sub-multigraph
        per label), so plain ``verify`` callers never pay for it."""
        if self._certificate is None and self.engine is not None \
                and getattr(self.engine, "entry_label", None) is not None:
            self._certificate = self.engine.certificate()
        return self._certificate

    @property
    def verified(self) -> bool:
        return self.status == Verdict.VERIFIED

    def to_json(self, entry: Optional[str] = None,
                kinds: Optional[Sequence[str]] = None) -> dict:
        """The machine-readable verdict (``sized verify --json``)."""
        witness = None
        if self.witness is not None:
            names = None
            if self.engine is not None and self.witness_function:
                for label, nm in self.engine.label_names.items():
                    if nm == self.witness_function:
                        names = self.engine.label_params.get(label)
            try:
                rendered = self.witness.pretty(names)
            except (AttributeError, TypeError):
                rendered = repr(self.witness)
            witness = {
                "function": self.witness_function,
                "graph": rendered,
                "path": self.witness_path,
            }
        return {
            "schema": "sized-verify/v1",
            "status": self.status,
            "entry": entry,
            "kinds": list(kinds) if kinds is not None else None,
            "verified": self.verified,
            "reasons": list(self.reasons),
            "witness": witness,
            "explanation": list(self.explanation),
            "discharge": (self.certificate.summary()
                          if self.certificate is not None else None),
        }

    def render(self) -> str:
        lines = [f"verdict: {self.status}"]
        for r in self.reasons:
            lines.append(f"  - {r}")
        if self.witness is not None:
            fn = self.witness_function or "?"
            names = None
            if self.engine is not None:
                for label, nm in self.engine.label_names.items():
                    if nm == fn:
                        names = self.engine.label_params.get(label)
            lines.append(
                f"  - witness: {fn} admits the idempotent, descent-free "
                f"composition {self.witness.pretty(names)}"
            )
        if self.witness_path:
            lines.append(f"  - along the call path: {self.witness_path}")
        for line in self.explanation:
            lines.append(f"  - {line}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Verdict({self.status})"


def verify_program(
    program: Program,
    entry: str,
    kinds: Sequence[str],
    budget: Optional[Budget] = None,
    result_kinds=None,
    graph_engine: str = "bitmask",
) -> Verdict:
    """Verify ``entry`` under ``kinds``.

    ``graph_engine`` selects the phase-2 closure representation —
    ``'bitmask'`` (packed int pairs, the default) or ``'reference'`` (the
    paper's frozenset graphs) — mirroring the ``--engine`` knob of ``run``
    and ``trace``.  On failure the witness multipath is always re-derived
    with the provenance-tracking reference walk.
    """
    if graph_engine not in ("bitmask", "reference"):
        raise ValueError(f"unknown graph engine: {graph_engine!r}")
    engine = Engine(program, budget=budget, result_kinds=result_kinds)
    entry_value = engine.globals.bindings.get(intern(entry))
    if not isinstance(entry_value, Closure):
        return Verdict(
            Verdict.UNKNOWN,
            [f"entry {entry!r} is not a statically known closure "
             f"(got {type(entry_value).__name__})"],
            engine,
        )
    if len(kinds) != len(entry_value.lam.params):
        return Verdict(
            Verdict.UNKNOWN,
            [f"entry {entry!r} expects {len(entry_value.lam.params)} "
             f"arguments, {len(kinds)} preconditions given"],
            engine,
        )
    engine.run(entry_value, list(kinds))

    if graph_engine == "reference":
        scp = scp_check_with_witness(engine.edges)
        failed = scp.ok is False
        undetermined = scp.ok is None
    else:
        quick = scp_check(engine.edges, engine="bitmask")
        failed = quick.ok is False
        undetermined = quick.ok is None
        # The bitmask closure carries no provenance; re-derive the
        # multipath with the reference walk (both engines' completed
        # verdicts coincide — see repro.analysis.ljb).
        scp = scp_check_with_witness(engine.edges) if failed else quick
        if failed and scp.ok is not False:  # pragma: no cover - cap races
            scp = quick
    reasons: List[str] = []
    if failed:
        fn = engine.label_names.get(scp.witness_label, f"λ{scp.witness_label}")
        reasons.append(
            f"size-change principle fails at {fn}: no composition of the "
            "collected graphs guarantees descent"
        )
        path = (scp.render_path(engine.label_names, engine.label_params)
                if hasattr(scp, "render_path") else None)
        return Verdict(Verdict.UNKNOWN, reasons + engine.incomplete, engine,
                       witness=scp.witness_graph, witness_function=fn,
                       witness_path=path)
    if undetermined:
        reasons.append("graph-closure budget exceeded")
    reasons.extend(engine.incomplete)
    if reasons:
        return Verdict(Verdict.UNKNOWN, reasons, engine)
    explanation = explain_termination(engine.edges, engine.label_names,
                                      engine.label_params)
    return Verdict(Verdict.VERIFIED, [], engine, explanation=explanation)


def verify_source(text: str, entry: str, kinds: Sequence[str],
                  budget: Optional[Budget] = None, result_kinds=None,
                  graph_engine: str = "bitmask") -> Verdict:
    return verify_program(parse_program(text), entry, kinds, budget=budget,
                          result_kinds=result_kinds,
                          graph_engine=graph_engine)
