"""Path conditions (paper Fig. 8's φ, enriched).

A path condition is an immutable record of what the current path assumed:

* ``atoms`` — linear-arithmetic facts (the classical φ),
* ``kinds`` — per-symbol type refinements (``int``/``pair``/``nil``/``fun``),
* ``heap`` — the symbolic pair store: node name → (car value, cdr value),
* ``subs`` — the substructure order: child name → parent node names.  This
  is how ``(cdr l) ≺ l`` facts reach the size-change arc prover without a
  full theory of algebraic data types.

All updates are functional (copy-on-write of small dicts) so branches fork
cheaply.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.solver.interface import Solver
from repro.solver.linear import Atom

K_INT = "int"
K_PAIR = "pair"
K_NIL = "nil"
K_FUN = "fun"

# Kinds are mutually exclusive; refining to an incompatible kind kills the path.
_COMPATIBLE = {
    (K_INT, K_INT), (K_PAIR, K_PAIR), (K_NIL, K_NIL), (K_FUN, K_FUN),
}


class PathCond:
    __slots__ = ("atoms", "kinds", "heap", "subs")

    def __init__(
        self,
        atoms: Tuple[Atom, ...] = (),
        kinds: Optional[Dict[str, str]] = None,
        heap: Optional[Dict[str, Tuple[object, object]]] = None,
        subs: Optional[Dict[str, Tuple[str, ...]]] = None,
    ):
        self.atoms = atoms
        self.kinds = kinds or {}
        self.heap = heap or {}
        self.subs = subs or {}

    # -- arithmetic facts -----------------------------------------------------

    def assume(self, atom: Atom) -> "PathCond":
        if atom in self.atoms:
            return self
        return PathCond(self.atoms + (atom,), self.kinds, self.heap, self.subs)

    def feasible(self, solver: Solver) -> bool:
        return solver.satisfiable(self.atoms)

    def entails(self, solver: Solver, atom: Atom) -> bool:
        return solver.entails(self.atoms, atom)

    # -- kinds ------------------------------------------------------------------

    def kind_of(self, name: str) -> Optional[str]:
        return self.kinds.get(name)

    def refine(self, name: str, kind: str) -> Optional["PathCond"]:
        """Record ``name : kind``; ``None`` when the path becomes infeasible."""
        current = self.kinds.get(name)
        if current is not None:
            return self if current == kind else None
        kinds = dict(self.kinds)
        kinds[name] = kind
        return PathCond(self.atoms, kinds, self.heap, self.subs)

    # -- symbolic pairs -----------------------------------------------------------

    def node(self, name: str) -> Optional[Tuple[object, object]]:
        return self.heap.get(name)

    def with_node(self, name: str, car, cdr, child_names=()) -> "PathCond":
        heap = dict(self.heap)
        heap[name] = (car, cdr)
        subs = self.subs
        if child_names:
            subs = dict(subs)
            for child in child_names:
                subs[child] = subs.get(child, ()) + (name,)
        return PathCond(self.atoms, self.kinds, heap, subs)

    def descends_to(self, child: str, ancestor: str) -> bool:
        """Is ``child`` a strict substructure of ``ancestor``?"""
        seen = set()
        stack = [child]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            for parent in self.subs.get(n, ()):
                if parent == ancestor:
                    return True
                stack.append(parent)
        return False

    def __repr__(self) -> str:
        return (
            f"PathCond({len(self.atoms)} atoms, {len(self.kinds)} kinds, "
            f"{len(self.heap)} nodes)"
        )
