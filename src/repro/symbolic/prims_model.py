"""Symbolic models of the primitives.

Ground applications fall through to the concrete primitive (they are pure).
Symbolic applications follow Fig. 8's spirit:

* affine arithmetic stays precise (``+``, ``-``, ``*`` by a constant,
  ``add1``/``sub1``, comparisons become path-condition atoms);
* ``quotient``/``remainder``/``modulo``/``expt`` and variable products are
  **uninterpreted** — deliberately, to mirror which Table 1 rows the
  paper's checker could not verify;
* type predicates refine the tested symbol's kind and fork;
* ``car``/``cdr`` materialize symbolic heap nodes and record substructure;
* ``hash-ref`` with a symbolic key over a concrete table case-splits over
  the table's range (how ``dderiv``'s dispatch is resolved).

Every model returns a list of ``(value, pathcond)`` alternatives; an empty
list prunes the path (a run-time error path — soft verification ignores
those for the termination question).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SchemeError
from repro.sexp.datum import Symbol
from repro.solver.interface import Solver
from repro.solver.linear import LinExpr, eq as eq_atom, ge, gt, le, lt, ne
from repro.symbolic.arcs import _is_ground, as_linexpr
from repro.symbolic.pathcond import K_FUN, K_INT, K_NIL, K_PAIR, PathCond
from repro.symbolic.values import LOST, SExpr, STest, SVar, fresh_name, is_symbolic
from repro.values.values import NIL, VOID, Box, Closure, HashValue, Pair, Prim

Result = List[Tuple[object, PathCond]]

_ZERO = LinExpr.constant(0)


class PrimModels:
    def __init__(self, solver: Solver):
        self.solver = solver
        self._table: Dict[str, Callable] = {
            "+": self._add, "-": self._sub, "*": self._mul,
            "add1": self._add1, "sub1": self._sub1, "abs": self._abs,
            "=": self._cmp(eq_atom), "<": self._cmp(lt), ">": self._cmp(gt),
            "<=": self._cmp(le), ">=": self._cmp(ge),
            "zero?": self._zero, "positive?": self._positive,
            "negative?": self._negative,
            "car": self._car, "cdr": self._cdr, "cons": self._cons,
            "first": self._car, "rest": self._cdr,
            "null?": self._null, "empty?": self._null,
            "pair?": self._pair, "cons?": self._pair,
            "number?": self._kind_pred(K_INT), "integer?": self._kind_pred(K_INT),
            "procedure?": self._procedure,
            "not": self._not,
            "eq?": self._equalish, "eqv?": self._equalish, "equal?": self._equalish,
            "length": self._length,
            "hash-ref": self._hash_ref,
            "error": self._error,
        }
        # Structural accessors (cadr, caddr ...) expand to car/cdr chains.
        for path in ("aa", "ad", "da", "dd", "aaa", "aad", "ada", "add",
                     "daa", "dad", "dda", "ddd", "addd", "dddd"):
            self._table[f"c{path}r"] = self._caxr(path)
        self._table["second"] = self._caxr("ad")
        self._table["third"] = self._caxr("add")

    # -- entry point --------------------------------------------------------------

    def apply(self, prim: Prim, args: List, pc: PathCond) -> Result:
        if all(_is_ground(a) for a in args):
            try:
                return [(prim.fn(list(args)), pc)]
            except SchemeError:
                return []  # error path: pruned
        model = self._table.get(prim.name)
        if model is not None:
            return model(args, pc)
        return self._havoc(args, pc)

    def _havoc(self, args, pc: PathCond, kind: Optional[str] = None) -> Result:
        origin = LOST if any(
            type(a) is SVar and a.origin == LOST for a in args
        ) else "opponent"
        v = SVar(fresh_name("h"), origin=origin)
        if kind is not None:
            refined = pc.refine(v.name, kind)
            return [(v, refined)] if refined is not None else []
        return [(v, pc)]

    # -- arithmetic -----------------------------------------------------------------

    def _lin_args(self, args, pc) -> Optional[List[LinExpr]]:
        out = []
        for a in args:
            e = as_linexpr(a, pc)
            if e is None:
                return None
            out.append(e)
        return out

    def _refine_ints(self, args, pc: PathCond) -> Optional[PathCond]:
        for a in args:
            if type(a) is SVar:
                pc = pc.refine(a.name, K_INT)
                if pc is None:
                    return None
        return pc

    def _add(self, args, pc) -> Result:
        es = self._lin_args(args, pc)
        if es is None:
            return self._havoc(args, pc, K_INT)
        pc = self._refine_ints(args, pc)
        if pc is None:
            return []
        total = LinExpr.constant(0)
        for e in es:
            total = total + e
        return [(_mk_int(total), pc)]

    def _sub(self, args, pc) -> Result:
        es = self._lin_args(args, pc)
        if es is None:
            return self._havoc(args, pc, K_INT)
        pc = self._refine_ints(args, pc)
        if pc is None:
            return []
        if len(es) == 1:
            return [(_mk_int(es[0].scale(-1)), pc)]
        total = es[0]
        for e in es[1:]:
            total = total - e
        return [(_mk_int(total), pc)]

    def _mul(self, args, pc) -> Result:
        es = self._lin_args(args, pc)
        if es is None:
            return self._havoc(args, pc, K_INT)
        pc = self._refine_ints(args, pc)
        if pc is None:
            return []
        total = LinExpr.constant(1)
        for e in es:
            if total.is_constant():
                total = e.scale(total.const)
            elif e.is_constant():
                total = total.scale(e.const)
            else:
                return self._havoc(args, pc, K_INT)  # non-linear: opaque
        return [(_mk_int(total), pc)]

    def _add1(self, args, pc) -> Result:
        return self._add([args[0], 1], pc)

    def _sub1(self, args, pc) -> Result:
        return self._sub([args[0], 1], pc)

    def _abs(self, args, pc) -> Result:
        e = as_linexpr(args[0], pc)
        if e is None:
            return self._havoc(args, pc, K_INT)
        pc2 = self._refine_ints(args, pc)
        if pc2 is None:
            return []
        if pc2.entails(self.solver, ge(e, _ZERO)):
            return [(_mk_int(e), pc2)]
        if pc2.entails(self.solver, ge(_ZERO, e)):
            return [(_mk_int(e.scale(-1)), pc2)]
        v = SVar(fresh_name("abs"))
        pc3 = pc2.refine(v.name, K_INT)
        pc3 = pc3.assume(ge(LinExpr.var(v.name), _ZERO))
        return [(v, pc3)]

    def _cmp(self, mk_atom):
        def model(args, pc) -> Result:
            if len(args) != 2:
                return self._havoc(args, pc)
            ea = as_linexpr(args[0], pc)
            eb = as_linexpr(args[1], pc)
            if ea is None or eb is None:
                return self._havoc(args, pc)
            pc = self._refine_ints(args, pc)
            if pc is None:
                return []
            return [(STest(mk_atom(ea, eb)), pc)]

        return model

    def _zero(self, args, pc) -> Result:
        return self._cmp(eq_atom)([args[0], 0], pc)

    def _positive(self, args, pc) -> Result:
        return self._cmp(gt)([args[0], 0], pc)

    def _negative(self, args, pc) -> Result:
        return self._cmp(lt)([args[0], 0], pc)

    # -- pairs ------------------------------------------------------------------------

    def _materialize_pair(self, v, pc: PathCond):
        """Refine ``v`` to a pair and return (car, cdr, pc) or None."""
        if type(v) is Pair:
            return v.car, v.cdr, pc
        if type(v) is not SVar:
            return None
        pc = pc.refine(v.name, K_PAIR)
        if pc is None:
            return None
        node = pc.node(v.name)
        if node is None:
            car = SVar(fresh_name(f"{v.name}.a"), origin=v.origin)
            cdr = SVar(fresh_name(f"{v.name}.d"), origin=v.origin)
            pc = pc.with_node(v.name, car, cdr, (car.name, cdr.name))
            return car, cdr, pc
        return node[0], node[1], pc

    def _car(self, args, pc) -> Result:
        got = self._materialize_pair(args[0], pc)
        return [] if got is None else [(got[0], got[2])]

    def _cdr(self, args, pc) -> Result:
        got = self._materialize_pair(args[0], pc)
        return [] if got is None else [(got[1], got[2])]

    def _caxr(self, path: str):
        def model(args, pc) -> Result:
            results = [(args[0], pc)]
            for step in reversed(path):
                nxt: Result = []
                for v, p in results:
                    got = self._materialize_pair(v, p)
                    if got is not None:
                        nxt.append((got[0] if step == "a" else got[1], got[2]))
                results = nxt
            return results

        return model

    def _cons(self, args, pc) -> Result:
        a, d = args
        if _is_ground(a) and _is_ground(d):
            return [(Pair(a, d), pc)]
        node = SVar(fresh_name("p"))
        pc = pc.refine(node.name, K_PAIR)
        children = tuple(
            x.name for x in (a, d) if type(x) is SVar
        )
        pc = pc.with_node(node.name, a, d, children)
        return [(node, pc)]

    # -- predicates -------------------------------------------------------------------

    def _null(self, args, pc) -> Result:
        v = args[0]
        if v is NIL:
            return [(True, pc)]
        if type(v) is Pair or isinstance(v, (Closure, Prim, int)):
            return [(False, pc)]
        if type(v) is SVar:
            kind = pc.kind_of(v.name)
            if kind == K_NIL:
                return [(True, pc)]
            if kind in (K_PAIR, K_INT, K_FUN):
                return [(False, pc)]
            out: Result = []
            yes = pc.refine(v.name, K_NIL)
            if yes is not None:
                out.append((True, yes))
            out.append((False, pc))
            return out
        if type(v) is SExpr:
            return [(False, pc)]
        return self._havoc(args, pc)

    def _pair(self, args, pc) -> Result:
        v = args[0]
        if type(v) is Pair:
            return [(True, pc)]
        if v is NIL or isinstance(v, (Closure, Prim, int)) or type(v) is SExpr:
            return [(False, pc)]
        if type(v) is SVar:
            kind = pc.kind_of(v.name)
            if kind == K_PAIR:
                return [(True, pc)]
            if kind in (K_NIL, K_INT, K_FUN):
                return [(False, pc)]
            out: Result = []
            yes = pc.refine(v.name, K_PAIR)
            if yes is not None:
                out.append((True, yes))
            out.append((False, pc))
            return out
        return self._havoc(args, pc)

    def _kind_pred(self, kind: str):
        def model(args, pc) -> Result:
            v = args[0]
            if type(v) is SExpr:
                return [(kind == K_INT, pc)]
            if type(v) is SVar:
                current = pc.kind_of(v.name)
                if current == kind:
                    return [(True, pc)]
                if current is not None:
                    return [(False, pc)]
                out: Result = []
                yes = pc.refine(v.name, kind)
                if yes is not None:
                    out.append((True, yes))
                out.append((False, pc))
                return out
            return self._havoc(args, pc)

        return model

    def _procedure(self, args, pc) -> Result:
        v = args[0]
        if isinstance(v, (Closure, Prim)):
            return [(True, pc)]
        if type(v) is SVar:
            return self._kind_pred(K_FUN)(args, pc)
        return [(False, pc)]

    def _not(self, args, pc) -> Result:
        v = args[0]
        if type(v) is STest:
            return [(STest(v.atom.negate()[0]), pc)]
        if is_symbolic(v):
            return [(True, pc), (False, pc)]
        return [(v is False, pc)]

    def _equalish(self, args, pc) -> Result:
        a, b = args
        if a is b:
            return [(True, pc)]
        ea = as_linexpr(a, pc)
        eb = as_linexpr(b, pc)
        if ea is not None and eb is not None and (is_symbolic(a) or is_symbolic(b)):
            return [(STest(eq_atom(ea, eb)), pc)]
        if is_symbolic(a) or is_symbolic(b):
            return [(True, pc), (False, pc)]
        from repro.values.equality import scheme_equal

        return [(scheme_equal(a, b), pc)]

    # -- misc ---------------------------------------------------------------------------

    def _length(self, args, pc) -> Result:
        v = SVar(fresh_name("len"))
        pc = pc.refine(v.name, K_INT)
        pc = pc.assume(ge(LinExpr.var(v.name), _ZERO))
        return [(v, pc)]

    def _hash_ref(self, args, pc) -> Result:
        table = args[0]
        if type(table) is HashValue:
            out: Result = [(v, pc) for _k, v in table.table.items()]
            if len(args) == 3:
                out.append((args[2], pc))
            return out if out else []
        return self._havoc(args, pc)

    def _error(self, args, pc) -> Result:
        return []  # error paths are pruned


def _mk_int(e: LinExpr):
    if e.is_constant():
        return e.const
    return SExpr(e)
