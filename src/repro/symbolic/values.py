"""Symbolic values (paper Fig. 8: ``s ::= x | b | (o s⃗)``).

* :class:`SVar` — an opaque unknown.  Its *kind* (int / pair / nil / fun)
  lives in the path condition, not the value, because refinements are
  per-path.  Its *origin* distinguishes opponent-supplied unknowns (entry
  arguments and values derived from them — applying such a function is the
  opponent's obligation, per soft-contract blame semantics) from values the
  analysis itself lost (summarized call results, havocked state); applying
  a *lost* function makes the verdict UNKNOWN.
* :class:`SExpr` — an integer-valued affine term over symbolic variables.
* :class:`STest` — a symbolic boolean carrying the solver atom it denotes.
"""

from __future__ import annotations

import itertools

from repro.solver.linear import Atom, LinExpr

OPPONENT = "opponent"
LOST = "lost"

_counter = itertools.count()


def fresh_name(prefix: str = "s") -> str:
    return f"{prefix}.{next(_counter)}"


class SVar:
    __slots__ = ("name", "origin")

    def __init__(self, name: str = None, origin: str = OPPONENT):
        self.name = name if name is not None else fresh_name()
        self.origin = origin

    def __repr__(self) -> str:
        return f"?{self.name}"


class SExpr:
    """An integer-valued symbolic term."""

    __slots__ = ("expr",)

    def __init__(self, expr: LinExpr):
        self.expr = expr

    def __repr__(self) -> str:
        return f"#[{self.expr!r}]"


class STest:
    """A symbolic boolean: the truth of ``atom``."""

    __slots__ = ("atom",)

    def __init__(self, atom: Atom):
        self.atom = atom

    def __repr__(self) -> str:
        return f"?bool{self.atom!r}"


def is_symbolic(v) -> bool:
    return type(v) in (SVar, SExpr, STest)
