"""Greedy S-expression shrinking and the regression archive.

The shrinker works on plain data (the reader's stripped data: Python
lists, :class:`~repro.sexp.datum.Symbol`, ints, bools, strings, chars),
so a candidate edit is a structural transformation followed by
re-rendering and re-running the differential matrix.  An edit is kept
when the divergence *class* persists — plus a behavioural sanity check
per class (a shrunk "diverging-verified" repro must still observably
diverge under ``off``, a shrunk "terminating-flagged" repro must still
observably terminate), so shrinking cannot wander into a program whose
construction-time oracle no longer applies.

Edit repertoire, tried smallest-promise-first at every position:

1. drop a whole top-level form,
2. replace a compound subexpression by one of its own subexpressions
   (hoisting — the work-horse),
3. replace any subexpression by the literal ``0``,
4. shrink an integer toward zero (0, 1, n/2),
5. drop an element of a (quoted or call) list.

Minimized repros are archived under ``tests/regressions/`` as ``.scm``
files whose leading comments carry the seed and oracle metadata, so
``tests/test_regressions.py`` (and ``sized fuzz --replay``) can re-run
them with the original expectations forever.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.eval.machine import Answer
from repro.fuzz.gen import GenProgram
from repro.sexp.datum import Char, Dotted, Symbol
from repro.sexp.reader import read_many

# -- datum rendering -----------------------------------------------------------


def render_datum(d) -> str:
    """Render a stripped reader datum back to program text.  Quote sugar
    is not reconstructed — ``(quote x)`` renders literally, which parses
    back to the same AST."""
    if d is True:
        return "#t"
    if d is False:
        return "#f"
    if isinstance(d, list):
        return "(" + " ".join(render_datum(x) for x in d) + ")"
    if isinstance(d, Dotted):
        return ("(" + " ".join(render_datum(x) for x in d.items)
                + " . " + render_datum(d.tail) + ")")
    if isinstance(d, Symbol):
        return d.name
    if isinstance(d, str):
        escaped = d.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(d, Char):
        return f"#\\{d.external_name()}"
    return repr(d)


def render_forms(forms: Sequence) -> str:
    return "\n".join(render_datum(f) for f in forms) + "\n"


def parse_forms(source: str) -> List:
    return [stx.strip() for stx in read_many(source, "<shrink>")]


# -- candidate edits -----------------------------------------------------------


def _subexprs(d) -> List:
    if isinstance(d, list):
        return list(d)
    return []


def _candidates_at(d) -> List:
    """Smaller replacements for one subtree, most aggressive first."""
    out: List = []
    if isinstance(d, list) and d:
        head = d[0]
        # Hoist children (skip the head symbol of a form/application).
        for child in d[1:] if isinstance(head, Symbol) else d:
            out.append(child)
        # Drop one element (shortens argument lists and quoted data).
        if len(d) > 1:
            for i in range(len(d) - 1, 0, -1):
                out.append(d[:i] + d[i + 1:])
    if isinstance(d, int) and not isinstance(d, bool):
        for smaller in (0, 1, d // 2):
            if smaller != d:
                out.append(smaller)
    if not (isinstance(d, int) and d == 0):
        out.append(0)
    return out


def _edits(forms: List) -> List[List]:
    """Every candidate whole-program edit, one structural change each."""
    out: List[List] = []
    # Drop whole top-level forms first: the cheapest big win.
    if len(forms) > 1:
        for i in range(len(forms)):
            out.append(forms[:i] + forms[i + 1:])

    def walk(d, replace):
        for cand in _candidates_at(d):
            out.append(replace(cand))
        if isinstance(d, list):
            for i, child in enumerate(d):
                def sub(c, i=i, d=d, replace=replace):
                    return replace(d[:i] + [c] + d[i + 1:])
                walk(child, sub)

    for fi, form in enumerate(forms):
        def top(c, fi=fi):
            return forms[:fi] + [c] + forms[fi + 1:]
        walk(form, top)
    return out


# -- the persistence predicate --------------------------------------------------


def _defines_entry(source: str, entry: Optional[str]) -> bool:
    """A verdict-class repro is vacuous once the entry λ is gone — the
    verifier reports ``unknown`` for a missing entry, so the class would
    'persist' all the way down to an empty program."""
    if not entry:
        return True
    try:
        forms = parse_forms(source)
    except Exception:  # noqa: BLE001 - unreadable candidate: reject
        return False
    for form in forms:
        if (isinstance(form, list) and len(form) >= 2
                and isinstance(form[0], Symbol) and form[0].name == "define"
                and isinstance(form[1], list) and form[1]
                and isinstance(form[1][0], Symbol)
                and form[1][0].name == entry):
            return True
    return False


_VERDICT_CLASSES = frozenset({
    "terminating-unverified", "terminating-undischarged",
    "diverging-verified", "diverging-discharged",
})


def _divergence_persists(klass: str, program: GenProgram, source: str,
                         cells, fuel: Optional[int]) -> bool:
    from repro.fuzz.differential import run_matrix

    candidate = GenProgram(
        seed=program.seed, mode=program.mode, source=source,
        entry=program.entry, entry_kinds=program.entry_kinds,
        features=program.features, must_verify=program.must_verify,
        must_discharge=program.must_discharge, fuel=program.fuel)
    try:
        matrix = run_matrix(candidate, cells=cells, fuel=fuel)
    except Exception:  # noqa: BLE001 - a crashy candidate is not "same bug"
        return False
    if not any(d.klass == klass for d in matrix.divergences):
        return False
    if klass in _VERDICT_CLASSES and not _defines_entry(source, program.entry):
        return False
    off = [r for r in matrix.cells if r.cell[2] == "off"]
    if program.mode == "terminating" and klass in (
            "terminating-unverified", "terminating-undischarged"):
        # Still observably terminating — otherwise the must-verify
        # promise no longer describes the candidate.
        return bool(off) and all(r.kind == Answer.VALUE for r in off)
    if program.mode == "diverging" and klass in (
            "diverging-verified", "diverging-discharged",
            "diverging-unflagged"):
        # Still observably diverging, or the class is vacuous.
        return bool(off) and all(r.kind == Answer.TIMEOUT for r in off)
    if program.mode == "terminating" and klass in (
            "terminating-flagged", "policy-mismatch", "cell-mismatch"):
        # Still observably terminating.
        return bool(off) and all(r.kind == Answer.VALUE for r in off)
    return True


def shrink_divergence(div, cells=None, fuel: Optional[int] = None,
                      max_attempts: int = 200) -> str:
    """Greedily minimize ``div.program.source`` while the divergence
    class persists; stores and returns the minimized text."""
    program = div.program
    try:
        forms = parse_forms(program.source)
    except Exception:  # noqa: BLE001 - unreadable source: keep as-is
        div.shrunk = program.source
        return div.shrunk
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _edits(forms):
            if attempts >= max_attempts:
                break
            text = render_forms(candidate)
            if len(text) >= len(render_forms(forms)):
                continue
            attempts += 1
            if _divergence_persists(div.klass, program, text, cells, fuel):
                forms = candidate
                improved = True
                break
    div.shrunk = render_forms(forms)
    div.shrink_steps = attempts
    return div.shrunk


# -- the regression archive -----------------------------------------------------

REGRESSION_DIR = os.path.join("tests", "regressions")


def archive_divergence(div, directory: Optional[str] = None) -> str:
    """Write a minimized repro as a seed-replayable ``.scm`` file and
    return its path."""
    directory = directory or REGRESSION_DIR
    os.makedirs(directory, exist_ok=True)
    program = div.program
    name = f"{div.klass}_{program.mode}_{program.seed}.scm"
    path = os.path.join(directory, name)
    body = div.shrunk if div.shrunk is not None else program.source
    lines = [
        ";; sized-fuzz regression (replay: sized fuzz --replay <this file>)",
        f";; class: {div.klass}",
        f";; seed: {program.seed}",
        f";; mode: {program.mode}",
        f";; entry: {program.entry}",
        f";; entry-kinds: {' '.join(program.entry_kinds)}",
        f";; must-verify: {'#t' if program.must_verify else '#f'}",
        f";; must-discharge: {'#t' if program.must_discharge else '#f'}",
        f";; fuel: {program.fuel}",
        f";; detail: {div.detail.replace(chr(10), ' ')}",
        "",
        body.rstrip("\n"),
        "",
    ]
    with open(path, "w") as f:
        f.write("\n".join(lines))
    return path


def load_regression(path: str) -> GenProgram:
    """Rebuild the archived program + oracle from a ``.scm`` repro."""
    meta = {}
    source_lines: List[str] = []
    with open(path) as f:
        for line in f:
            if line.startswith(";; ") and ":" in line:
                key, _, value = line[3:].partition(":")
                meta[key.strip()] = value.strip()
            elif not line.startswith(";;"):
                source_lines.append(line)
    kinds: Tuple[str, ...] = tuple(
        k for k in meta.get("entry-kinds", "").split() if k)
    return GenProgram(
        seed=int(meta.get("seed", "0")),
        mode=meta.get("mode", "terminating"),
        source="".join(source_lines).strip() + "\n",
        entry=meta.get("entry", "main"),
        entry_kinds=kinds,
        features=(),
        must_verify=meta.get("must-verify", "#f") == "#t",
        must_discharge=meta.get("must-discharge", "#f") == "#t",
        fuel=int(meta.get("fuel", "2000000")),
    )
