"""Property-based program generator with a known-verdict oracle.

The generator builds a program as a DAG of ``define``d functions plus one
or two top-level calls, under a discipline that makes the expected
behaviour of every configuration cell computable *at generation time*:

* **Scoping/arity**: every variable reference is a parameter of the
  enclosing function, a previously generated global, or a prelude/prim
  name; every call site is arity-correct.  Generated programs never
  raise ``errorRT``.

* **Terminating mode** — structural descent on parameter 0.  Each
  recursive function's parameter 0 is a ``nat`` or a ``list``; its
  recursive branch is guarded (``zero?`` / ``null?``) and every call
  that can close a cycle among generated functions (self-calls and the
  designated mutual pair) passes a parameter-0 value of strictly
  smaller size (``(- d 1)``, ``(quotient d 2)``, ``(cdr l)``).  Acyclic
  cross-calls (to strictly later functions in the DAG) may pass
  anything well-kinded — including *larger* values — because no
  composition of size-change graphs for a single closure can arise
  without a cycle.  (Two refinements, both found by the fuzzer's own
  campaigns: the cross-call's *descent-position* argument must stay
  symbolically transparent — no havoc wraps, seeds 1190/1360/… — and
  it may reference only parameter 0, because accumulators are rebound
  through arbitrary expressions on every cycle call and lose their
  kind after one iteration, seed 112.  A havocked value in descent
  position erases the callee's provable descent and breaks
  ``must_verify``.)  Consequently every graph the monitor records for a
  generated closure has the strict self-arc ``0 ↓ 0``, every
  composition retains it, and the monitor stays silent; the §4 engine
  proves the same descent statically.

* **Diverging mode** — the same construction, except one function is
  replanted with a non-decreasing self-loop (equal or growing parameter
  0) that the entry reaches unconditionally on its recursive branch.
  The monitor must flag it (or fuel must run out under ``off``), the
  verifier must answer UNKNOWN, and discharge must stay incomplete.

Feature knobs (``features=`` a set of names, see :data:`ALL_FEATURES`)
mix in accumulators, higher-order parameters and prelude combinators,
``terminating/c`` wraps, boxes, vectors, promises (``delay``/``force``),
``display`` output, and ``set!`` mutation of let/letrec locals
(sequenced updates, sibling-argument effects that pin left-to-right
evaluation order, and binding-aliasing probes — the observables a
compiling tier can get wrong while every pure program still agrees).
Mutation never touches a parameter or any name a descent argument
references, so it is invisible to the termination story: the engines
havoc reads of ``set!``-assigned names, which only matters in a cycle's
descent position, and the monitor's graphs track calls, not stores.  Each program records which features it used and
the derived oracle flags:

* ``must_verify`` — both static engines must answer VERIFIED (all
  terminating constructions; cleared only for diverging mode);
* ``must_discharge`` — the residual pipeline must reach a complete
  policy: cleared when the entry takes an opponent ``fun`` parameter or
  the program forces promises (both reasons taint discharge by design —
  an opponent-applied closure could re-enter any λ).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

ALL_FEATURES = (
    "accumulators",   # extra nat/list parameters threaded through calls
    "higher-order",   # fun parameters at the entry + prelude combinators
    "contracts",      # (terminating/c (λ ...) "label") applied in bodies
    "cells",          # box / unbox / set-box!
    "vectors",        # vector literals, vector-ref/length/->list
    "promises",       # delay / force
    "output",         # display / newline in bodies
    "mutation",       # set! on let/letrec locals: sequencing, sibling-
                      # argument effects, binding-aliasing probes
)

# Features whose presence keeps the entry from fully discharging: an
# opponent-supplied closure (a `fun`-kind entry argument) or a forced
# promise thunk is applied at an opaque site, and the engine soundly
# refuses to skip any λ an opponent call could re-enter.
_NO_DISCHARGE = frozenset({"higher-order", "promises"})

NAT = "nat"
LIST = "list"
FUN = "fun"


class GenProgram:
    """One generated program plus its oracle expectations."""

    __slots__ = ("seed", "mode", "source", "entry", "entry_kinds",
                 "features", "must_verify", "must_discharge", "fuel")

    def __init__(self, seed: int, mode: str, source: str, entry: str,
                 entry_kinds: Tuple[str, ...], features: Tuple[str, ...],
                 must_verify: bool, must_discharge: bool, fuel: int):
        self.seed = seed
        self.mode = mode
        self.source = source
        self.entry = entry
        self.entry_kinds = entry_kinds
        self.features = features
        self.must_verify = must_verify
        self.must_discharge = must_discharge
        self.fuel = fuel

    def __repr__(self) -> str:
        return (f"GenProgram(seed={self.seed}, mode={self.mode!r}, "
                f"features={list(self.features)})")


class _Fn:
    """Shape of one generated function."""

    __slots__ = ("name", "flavor", "params", "param_kinds", "index",
                 "diverging", "partner")

    def __init__(self, name: str, flavor: str, params: List[str],
                 param_kinds: List[str], index: int):
        self.name = name
        self.flavor = flavor          # NAT or LIST (descent flavor)
        self.params = params          # params[0] is the descent parameter
        self.param_kinds = param_kinds
        self.index = index            # DAG position: may call j > index
        self.diverging = False
        self.partner: Optional["_Fn"] = None  # mutual-recursion partner


def generate_program(seed: int, mode: str = "terminating",
                     features: Optional[Sequence[str]] = None) -> GenProgram:
    """Deterministically generate one program.  ``mode`` is
    ``'terminating'`` or ``'diverging'``; ``features`` restricts the
    feature pool (default: all of :data:`ALL_FEATURES`)."""
    if mode not in ("terminating", "diverging"):
        raise ValueError(f"unknown fuzz mode: {mode!r}")
    pool = tuple(features) if features is not None else ALL_FEATURES
    for f in pool:
        if f not in ALL_FEATURES:
            raise ValueError(f"unknown fuzz feature: {f!r}")
    rng = random.Random(f"sized-fuzz/{mode}/{seed}")
    active: Set[str] = {f for f in pool if rng.random() < 0.35}
    g = _Gen(rng, mode, active)
    source = g.build()
    return GenProgram(
        seed=seed, mode=mode, source=source, entry=g.entry.name,
        entry_kinds=tuple(g.entry_arg_kinds),
        features=tuple(sorted(g.used)),
        must_verify=(mode == "terminating"),
        must_discharge=(mode == "terminating"
                        and not (g.used & _NO_DISCHARGE)),
        fuel=g.fuel,
    )


class _Gen:
    def __init__(self, rng: random.Random, mode: str, active: Set[str]):
        self.rng = rng
        self.mode = mode
        self.active = active
        self.used: Set[str] = set()
        self.fns: List[_Fn] = []
        self.entry: _Fn = None  # type: ignore[assignment]
        self.entry_arg_kinds: List[str] = []
        self.nmut = 0  # unique-name counter for mutation locals
        # Fuel for the differential run: generous for terminating
        # programs (two-branch recursion on small inputs stays far
        # below this), small for diverging ones (the `off` cells only
        # need to *reach* the planted loop and spin it a while).
        self.fuel = 2_000_000 if mode == "terminating" else 150_000

    def on(self, feature: str) -> bool:
        return feature in self.active

    def use(self, feature: str) -> bool:
        if self.rng.random() < 0.5 and feature in self.active:
            self.used.add(feature)
            return True
        return False

    # -- program skeleton --------------------------------------------------

    def build(self) -> str:
        rng = self.rng
        nfuncs = rng.randint(1, 3)
        for i in range(nfuncs):
            flavor = rng.choice((NAT, LIST))
            params = [("n" if flavor == NAT else "l") + str(i)]
            kinds = [flavor]
            if self.on("accumulators"):
                for k in range(rng.randint(0, 2)):
                    self.used.add("accumulators")
                    params.append(f"a{i}{k}")
                    kinds.append(NAT)
            if self.on("higher-order") and rng.random() < 0.5:
                self.used.add("higher-order")
                params.append(f"h{i}")
                kinds.append(FUN)
            self.fns.append(_Fn(f"f{i}", flavor, params, kinds, i))
        # Optional mutual-recursion pair over adjacent same-flavor fns.
        if len(self.fns) >= 2 and rng.random() < 0.4:
            a, b = self.fns[0], self.fns[1]
            if a.flavor == b.flavor and FUN not in b.param_kinds:
                a.partner, b.partner = b, a
        self.entry = self.fns[0]
        if self.mode == "diverging":
            # Plant the loop in the entry itself or a callee the entry's
            # recursive branch reaches unconditionally.
            victim = rng.choice(self.fns)
            victim.diverging = True
        defines = [self._define(fn) for fn in self.fns]
        top = self._top_call()
        return "\n".join(defines + [top]) + "\n"

    # -- function bodies ---------------------------------------------------

    def _define(self, fn: _Fn) -> str:
        header = f"(define ({fn.name} {' '.join(fn.params)})"
        guard = (f"(zero? {fn.params[0]})" if fn.flavor == NAT
                 else f"(null? {fn.params[0]})")
        base = self._base_expr(fn)
        rec = self._rec_expr(fn)
        return f"{header}\n  (if {guard}\n      {base}\n      {rec}))"

    def _base_expr(self, fn: _Fn) -> str:
        """A pure nat expression for the exhausted-descent branch (every
        generated function returns an integer, so any call result can be
        combined with ``+`` without kind errors)."""
        rng = self.rng
        opts: List[str] = [str(rng.randint(0, 9))]
        for p, k in zip(fn.params, fn.param_kinds):
            if k == NAT and p != fn.params[0]:
                opts.append(p)
                opts.append(f"(+ {p} {rng.randint(1, 3)})")
            if k == FUN:
                opts.append(f"({p} {rng.randint(0, 5)})")
        choice = rng.choice(opts)
        if self.use("mutation"):
            choice = self._mutate_nat(choice)
        if self.use("output"):
            return f"(begin (display {choice}) (newline) {choice})"
        return choice

    def _smaller0(self, fn: _Fn) -> str:
        """A parameter-0 expression of strictly smaller size (the strict
        descent arc every cycle-closing call must carry).  Only shapes the
        symbolic prim models cover (``-``/``cdr``) — a havocked descent
        argument (e.g. ``quotient``) terminates fine but is not provable,
        and terminating-mode programs promise ``must_verify``."""
        if fn.flavor == NAT:
            return f"(- {fn.params[0]} 1)"
        return f"(cdr {fn.params[0]})"

    def _pure_nat(self, fn: _Fn, transparent: bool = False) -> str:
        """A pure expression of kind nat in fn's scope (≥ 0).

        ``transparent`` keeps the expression *kind-stable*: no feature
        wraps (``vector-ref``, ``unbox``, ``force``) whose results the
        symbolic engine havocs, and no references to accumulator
        parameters — accumulators are rebound through arbitrary
        (possibly havocking) expressions on every cycle call, so after
        one iteration their kind is gone too.  Only parameter 0 is
        rebound through kind-preserving shapes (``(- p 1)`` / ``(cdr
        p)``) on every cycle, so transparent mode references it and
        literals alone.  A havocked value is fine in an accumulator
        position, but in the *descent-parameter* position of a call it
        erases the callee's argument kind and its ``(- n 1)`` descent
        becomes unprovable — breaking the terminating-mode
        ``must_verify`` promise.  (Both refinements were found by the
        fuzzer itself: seeds 1190/1360/1448/... hit the direct havoc
        wrap, seed 112 hit the havocked-accumulator indirection.)"""
        rng = self.rng
        if transparent:
            opts = [str(rng.randint(0, 6))]
            p0, k0 = fn.params[0], fn.param_kinds[0]
            if k0 == NAT:
                opts += [p0, f"(+ {p0} 1)", f"(* {p0} 2)"]
            elif k0 == LIST:
                opts.append(f"(length {p0})")
            return rng.choice(opts)
        opts = [str(rng.randint(0, 6))]
        for p, k in zip(fn.params, fn.param_kinds):
            if k == NAT:
                opts.append(p)
                opts.append(f"(+ {p} 1)")
                opts.append(f"(* {p} 2)")
            elif k == LIST:
                opts.append(f"(length {p})")
        base = rng.choice(opts)
        if self.use("mutation"):
            return self._mutate_nat(base)
        if self.use("vectors"):
            vec = f"(vector {rng.randint(0, 4)} {rng.randint(0, 4)} {base})"
            return f"(vector-ref {vec} 2)"
        if self.use("cells"):
            return f"(unbox (box {base}))"
        if self.use("promises"):
            return f"(force (delay {base}))"
        return base

    def _pure_list(self, fn: _Fn, transparent: bool = False) -> str:
        rng = self.rng
        opts = ["'()", "'(1 2)", f"(list {rng.randint(0, 5)})"]
        if transparent:
            # Same kind-stability rule as _pure_nat: parameter 0 only.
            if fn.param_kinds[0] == LIST:
                p0 = fn.params[0]
                opts += [p0, f"(cons {rng.randint(0, 5)} {p0})"]
            return rng.choice(opts)
        for p, k in zip(fn.params, fn.param_kinds):
            if k == LIST:
                opts.append(p)
                opts.append(f"(cons {rng.randint(0, 5)} {p})")
        base = rng.choice(opts)
        if self.use("vectors"):
            return f"(vector->list (list->vector {base}))"
        return base

    def _mutate_nat(self, base: str) -> str:
        """Wrap a nat expression in a ``set!`` shape over fresh locals.
        Every shape still yields a nat and never references a parameter,
        so kinds, descent and the monitor's graphs are untouched — but
        the *value* depends on left-to-right sibling evaluation order
        and on each binding getting its own storage, which is exactly
        where a compiling tier can silently diverge."""
        rng = self.rng
        k = self.nmut
        self.nmut += 1
        m, w = f"m{k}", f"w{k}"
        c = rng.randint(1, 9)
        shapes = [
            # Sequenced update, then read.
            f"(let (({m} {base})) (begin (set! {m} (+ {m} {c})) {m}))",
            # Sibling-argument effect: the left read must happen before
            # the right argument's set! clobbers the slot.
            f"(let (({m} {base})) (+ {m} (begin (set! {m} {c}) {m})))",
            # Aliasing probe: the inner let binding must get its own
            # storage — set! on it must not leak into the letrec slot.
            f"(letrec (({m} {base})) (let (({w} {m})) "
            f"(begin (set! {w} {c}) (+ {m} {w}))))",
            # Parallel let with cross-reading set!s afterwards.
            f"(let (({m} {base}) ({w} {c})) "
            f"(begin (set! {m} (+ {m} {w})) (+ {m} {w})))",
        ]
        return rng.choice(shapes)

    def _arg_for(self, kind: str, fn: _Fn, transparent: bool = False) -> str:
        if kind == NAT:
            return self._pure_nat(fn, transparent)
        if kind == LIST:
            return self._pure_list(fn, transparent)
        return self._fun_literal()

    def _fun_literal(self) -> str:
        rng = self.rng
        body = rng.choice(["(+ x 1)", "(* x 2)", "(- x 1)", "x",
                           "(+ (* x x) 1)"])
        return f"(lambda (x) {body})"

    def _descending_call(self, fn: _Fn, callee: _Fn) -> str:
        """A call to ``callee`` whose parameter 0 strictly descends from
        ``fn``'s parameter 0 — legal on any cycle (self or mutual)."""
        if fn.flavor == callee.flavor:
            arg0 = self._smaller0(fn)
        elif fn.flavor == LIST:
            # |length (cdr l)| < |l| because every cons cell contributes
            # at least 1 to the size beyond its car.
            arg0 = f"(length (cdr {fn.params[0]}))"
        else:  # NAT caller, LIST callee: '() has size 0 < any positive n
            arg0 = "'()"
        rest = [self._arg_for(k, fn) for k in callee.param_kinds[1:]]
        return "(" + " ".join([callee.name, arg0] + rest) + ")"

    def _cross_call(self, fn: _Fn) -> Optional[str]:
        """An acyclic call to a strictly later function — any well-kinded
        arguments are fine, including growing ones."""
        later = [g for g in self.fns
                 if g.index > fn.index and g is not fn.partner
                 and not g.diverging]
        if not later:
            return None
        callee = self.rng.choice(later)
        # Parameter 0 (the callee's descent position) must stay
        # symbolically transparent; the rest may be havocked freely.
        args = [self._arg_for(k, fn, transparent=(i == 0))
                for i, k in enumerate(callee.param_kinds)]
        return "(" + " ".join([callee.name] + args) + ")"

    def _combine(self, fn: _Fn, call: str) -> str:
        """Wrap a recursive call into a (possibly non-tail) context.
        Every shape yields an integer."""
        rng = self.rng
        shapes = [
            call,                                      # tail
            f"(+ 1 {call})",
            f"(+ {rng.randint(1, 3)} {call})",
        ]
        cross = self._cross_call(fn)
        if cross is not None and rng.random() < 0.5:
            shapes.append(f"(+ {cross} {call})")
        out = rng.choice(shapes)
        if self.use("mutation"):
            # The recursive call as a set! right-hand side: the stored
            # result must round-trip through the mutated local.
            k = self.nmut
            self.nmut += 1
            out = f"(let ((m{k} 0)) (begin (set! m{k} {out}) m{k}))"
        if self.use("contracts"):
            out = (f"((terminating/c (lambda (r) r) "
                   f"\"gen-{fn.name}\") {out})")
        if FUN in fn.param_kinds and self.use("higher-order"):
            h = fn.params[fn.param_kinds.index(FUN)]
            out = f"(+ ({h} 1) {out})"
        if self.use("output"):
            out = f"(begin (display {fn.params[0]}) {out})"
        return out

    def _rec_expr(self, fn: _Fn) -> str:
        if fn.diverging:
            return self._planted_loop(fn)
        rng = self.rng
        if fn.partner is not None and rng.random() < 0.7:
            call = self._descending_call(fn, fn.partner)
        else:
            call = self._descending_call(fn, fn)
        body = self._combine(fn, call)
        # Reach a planted diverging callee unconditionally from the
        # recursive branch, so mode 'diverging' always fires.  Parameter 0
        # of the trigger must fail the callee's base guard.
        div = [g for g in self.fns if g.diverging and g is not fn]
        if div and fn is self.entry:
            callee = div[0]
            arg0 = "3" if callee.flavor == NAT else "'(1 2)"
            rest = [self._arg_for(k, fn) for k in callee.param_kinds[1:]]
            trigger = "(" + " ".join([callee.name, arg0] + rest) + ")"
            body = f"(+ {trigger} {body})"
        # Prelude combinators on a list parameter (pure λ, so the only
        # monitored recursion is the combinator's own structural one).
        if fn.flavor == LIST and self.use("higher-order"):
            combinator = rng.choice(("map", "filter", "foldr"))
            l0 = fn.params[0]
            if combinator == "map":
                body = f"(+ (length (map {self._fun_literal()} {l0})) {body})"
            elif combinator == "filter":
                body = (f"(+ (length (filter (lambda (x) (< x 3)) {l0}))"
                        f" {body})")
            else:
                body = f"(+ (foldr (lambda (x y) (+ x y)) 0 {l0}) {body})"
        return body

    def _planted_loop(self, fn: _Fn) -> str:
        """A self-call with non-decreasing parameter 0 (and unchanged
        other parameters), reachable whenever the guard fails."""
        d = fn.params[0]
        if fn.flavor == NAT:
            arg0 = self.rng.choice([d, f"(+ {d} 1)", f"(* {d} 1)"])
        else:
            arg0 = self.rng.choice([d, f"(cons 1 {d})"])
        rest = fn.params[1:]
        return "(" + " ".join([fn.name, arg0] + rest) + ")"

    # -- the top-level workload --------------------------------------------

    def _top_call(self) -> str:
        """One top-level call with literal/λ arguments only, so
        :func:`repro.analysis.discharge.infer_workload` covers it."""
        rng = self.rng
        args: List[str] = []
        for i, kind in enumerate(self.entry.param_kinds):
            if kind == NAT:
                # Parameter 0 must make the guard fail at least once so a
                # planted loop is reached.
                args.append(str(rng.randint(2, 7) if i == 0
                                else rng.randint(0, 5)))
            elif kind == LIST:
                n = rng.randint(1, 5) if i == 0 else rng.randint(0, 4)
                args.append("'(" + " ".join(
                    str(rng.randint(0, 6)) for _ in range(n)) + ")"
                    if n else "'()")
            else:
                args.append(self._fun_literal())
        self.entry_arg_kinds = [
            ("pair" if k == LIST and a != "'()" else
             "nil" if k == LIST else
             "fun" if k == FUN else "nat")
            for k, a in zip(self.entry.param_kinds, args)]
        return "(" + " ".join([self.entry.name] + args) + ")"
