"""Hostile-program fuzzing: a generative differential oracle over every
machine × engine × discharge configuration.

Three pieces (see ``docs/architecture.md`` §fuzz for the full story):

* :mod:`repro.fuzz.gen` — a seeded generator of well-scoped, arity-correct
  programs with a tunable feature mix.  Every program is built in one of
  two *constructive* modes, so the oracle knows the expected verdict
  before any cell runs:

  - **terminating-by-construction**: every generated recursive function
    strictly descends on parameter 0 along every (dynamically nested)
    call into a generated recursive function, so the size-change monitor
    is silent and the static verifier proves the entry;
  - **diverging-by-construction**: one function carries a planted
    non-decreasing self-loop reachable from the entry, so the program
    must hit a monitor violation (or the fuel bound when unmonitored)
    and must never verify or fully discharge.

* :mod:`repro.fuzz.differential` — runs one program under the 12-cell
  matrix {tree, compiled} × {bitmask, reference} × {off, monitored,
  discharged} plus the two-engine static verdict, and classifies any
  disagreement with the oracle into a :class:`~repro.fuzz.differential.
  Divergence`.

* :mod:`repro.fuzz.shrink` — a greedy S-expression-level shrinker that
  minimizes a divergence while its observable class persists, and
  archives the result under ``tests/regressions/`` as a seed-replayable
  ``.scm`` file.
"""

from repro.fuzz.differential import (
    Divergence,
    FuzzReport,
    default_cells,
    run_fuzz,
    run_matrix,
)
from repro.fuzz.gen import ALL_FEATURES, GenProgram, generate_program
from repro.fuzz.shrink import archive_divergence, shrink_divergence

__all__ = [
    "ALL_FEATURES",
    "Divergence",
    "FuzzReport",
    "GenProgram",
    "archive_divergence",
    "default_cells",
    "generate_program",
    "run_fuzz",
    "run_matrix",
    "shrink_divergence",
]
