"""The 18-cell differential runner and its oracle.

One generated (or corpus, or regression) program runs under every cell of

    {tree, compiled, native} × {bitmask, reference}
                             × {off, monitored, discharged}

with a fuel bound, plus a two-engine static verdict and one residual-
enforcement pipeline run.  The oracle then checks:

* **intra-group byte identity** — within each policy group (off /
  monitored / discharged) all six machine × engine cells must agree on
  the answer kind, the printed value, the captured output, the rendered
  ``SizeChangeViolation`` payload, and the run-time error text; a
  mismatch whose offending pair involves a native cell is classed
  ``native-fallback-mismatch`` (the compiled tier or its interpreter
  fallback boundary broke the contract), any other pair stays the
  historical ``cell-mismatch``;
* **cross-group consistency** — terminating programs are monitor-silent
  by construction, so all eighteen cells must be byte-identical and be
  values; diverging programs must exhaust fuel under ``off`` and must be
  stopped (violation or fuel) under ``monitored``/``discharged``;
* **verifier-verdict consistency** — the bitmask and reference engines
  must give the same verdict; ``must_verify`` programs must be VERIFIED
  and diverging programs must never be;
* **discharge consistency** — ``must_discharge`` programs must reach a
  complete residual policy; diverging programs must never fully
  discharge; and a completely discharged run must never be flagged at
  run time (``discharged-flagged`` is the soundness-breach class).

Any violated check becomes a :class:`Divergence` carrying the offending
cells, ready for :mod:`repro.fuzz.shrink`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.discharge import VerificationCache, discharge_for_run
from repro.errors import FuelExhausted
from repro.eval.machine import Answer, run_program
from repro.fuzz.gen import GenProgram, generate_program
from repro.lang.parser import parse_program
from repro.sct.monitor import SCMonitor
from repro.symbolic import verify_source
from repro.values.values import write_value

MACHINES = ("tree", "compiled", "native")
ENGINES = ("bitmask", "reference")
POLICIES = ("off", "monitored", "discharged")


def default_cells(matrix: str = "full") -> List[Tuple[str, str, str]]:
    """The cell list for a matrix spec: ``full`` (all 18), ``quick``
    (6 cells covering all machines, both engines and all policies), or
    an explicit comma list of ``machine:engine:policy`` triples."""
    if matrix == "full":
        return [(m, e, p) for m in MACHINES for e in ENGINES
                for p in POLICIES]
    if matrix == "quick":
        return [
            ("compiled", "bitmask", "off"),
            ("native", "bitmask", "off"),
            ("tree", "bitmask", "monitored"),
            ("compiled", "reference", "monitored"),
            ("native", "bitmask", "monitored"),
            ("native", "bitmask", "discharged"),
        ]
    cells = []
    for spec in matrix.split(","):
        parts = tuple(spec.strip().split(":"))
        if len(parts) != 3 or parts[0] not in MACHINES \
                or parts[1] not in ENGINES or parts[2] not in POLICIES:
            raise ValueError(
                f"bad cell spec {spec!r} (want machine:engine:policy)")
        cells.append(parts)
    return cells


class CellResult:
    """One cell's observables, all pre-rendered to bytes-stable text."""

    __slots__ = ("cell", "kind", "value", "output", "violation", "error",
                 "fuel_exhausted")

    def __init__(self, cell: Tuple[str, str, str], answer: Answer):
        self.cell = cell
        self.kind = answer.kind
        self.value = (write_value(answer.value)
                      if answer.kind == Answer.VALUE else None)
        self.output = answer.output
        self.violation = (str(answer.violation)
                          if answer.violation is not None else None)
        self.error = str(answer.error) if answer.error is not None else None
        self.fuel_exhausted = isinstance(answer.error, FuelExhausted)

    def signature(self) -> Tuple:
        """What byte-identity compares within a policy group."""
        return (self.kind, self.value, self.output, self.violation,
                None if self.fuel_exhausted else self.error)

    def summary(self) -> dict:
        return {
            "cell": ":".join(self.cell),
            "kind": self.kind,
            "value": self.value,
            "output": self.output,
            "violation": self.violation,
            "error": self.error,
        }


class Divergence:
    """One oracle violation for one program."""

    __slots__ = ("klass", "detail", "program", "cells", "shrunk",
                 "shrink_steps")

    def __init__(self, klass: str, detail: str, program: GenProgram,
                 cells: Sequence[CellResult] = ()):
        self.klass = klass
        self.detail = detail
        self.program = program
        self.cells = list(cells)
        self.shrunk: Optional[str] = None
        self.shrink_steps = 0

    def summary(self) -> dict:
        return {
            "class": self.klass,
            "detail": self.detail,
            "seed": self.program.seed,
            "mode": self.program.mode,
            "features": list(self.program.features),
            "source_chars": len(self.program.source),
            "shrunk_chars": (len(self.shrunk) if self.shrunk is not None
                             else None),
            "shrink_steps": self.shrink_steps,
            "cells": [c.summary() for c in self.cells[:4]],
        }

    def __repr__(self) -> str:
        return f"Divergence({self.klass}: {self.detail})"


class MatrixResult:
    """All observables for one program: cells, verdicts, discharge."""

    __slots__ = ("program", "cells", "verdicts", "discharge_complete",
                 "divergences")

    def __init__(self, program, cells, verdicts, discharge_complete,
                 divergences):
        self.program = program
        self.cells = cells
        self.verdicts = verdicts
        self.discharge_complete = discharge_complete
        self.divergences = divergences


def run_matrix(program: GenProgram,
               cells: Optional[Sequence[Tuple[str, str, str]]] = None,
               fuel: Optional[int] = None,
               check_oracle: bool = True) -> MatrixResult:
    """Run one program over the matrix and apply the oracle."""
    if cells is None:
        cells = default_cells("full")
    fuel = fuel if fuel is not None else program.fuel
    try:
        parsed = parse_program(program.source,
                               source=f"<fuzz {program.seed}>")
    except Exception as exc:  # noqa: BLE001 - reported as a divergence
        return MatrixResult(program, [], {}, None, [Divergence(
            "parse-error", f"{type(exc).__name__}: {exc}", program)])
    divergences: List[Divergence] = []

    # Static verdicts (engine × {bitmask, reference}), once per program.
    verdicts: Dict[str, str] = {}
    if check_oracle:
        for engine in ENGINES:
            try:
                v = verify_source(program.source, program.entry,
                                  list(program.entry_kinds),
                                  graph_engine=engine)
                verdicts[engine] = v.status
            except Exception as exc:  # noqa: BLE001
                verdicts[engine] = f"crash: {type(exc).__name__}: {exc}"

    # The residual-enforcement pipeline, once per program (the policy is
    # machine-independent; an in-memory cache keeps the run hermetic).
    need_discharge = any(p == "discharged" for (_, _, p) in cells)
    policy = None
    discharge_complete: Optional[bool] = None
    if need_discharge:
        try:
            result = discharge_for_run(parsed, text=program.source,
                                       cache=VerificationCache(None))
            policy = result.policy
            discharge_complete = result.complete
        except Exception as exc:  # noqa: BLE001
            divergences.append(Divergence(
                "discharge-crash", f"{type(exc).__name__}: {exc}", program))
            need_discharge = False

    results: List[CellResult] = []
    for cell in cells:
        machine, engine, pol = cell
        if pol == "discharged" and policy is None:
            continue
        monitor = SCMonitor(engine=engine)
        mode = "off" if pol == "off" else "full"
        discharge = policy if pol == "discharged" else None
        try:
            answer = run_program(parsed, mode=mode, strategy="cm",
                                 monitor=monitor, fuel=fuel,
                                 machine=machine, discharge=discharge)
        except Exception as exc:  # noqa: BLE001 - crash ≠ clean answer
            divergences.append(Divergence(
                "machine-crash",
                f"{':'.join(cell)} crashed: {type(exc).__name__}: {exc}",
                program))
            continue
        results.append(CellResult(cell, answer))

    if check_oracle:
        divergences.extend(_apply_oracle(program, results, verdicts,
                                         discharge_complete))
    return MatrixResult(program, results, verdicts, discharge_complete,
                        divergences)


def _group(results: Sequence[CellResult], policy: str) -> List[CellResult]:
    return [r for r in results if r.cell[2] == policy]


def _apply_oracle(program: GenProgram, results: Sequence[CellResult],
                  verdicts: Dict[str, str],
                  discharge_complete: Optional[bool]) -> List[Divergence]:
    out: List[Divergence] = []

    # 1. Intra-group byte identity.  The cell order puts the reference
    # machines (tree, compiled) before native, so a pair that disagrees
    # without involving native keeps the historical ``cell-mismatch``
    # class; a pair where a native cell breaks identity is classed
    # ``native-fallback-mismatch`` — the compiler or its interpreter
    # fallback boundary changed an observable.
    for policy in POLICIES:
        group = _group(results, policy)
        if len(group) < 2:
            continue
        ref = group[0]
        for other in group[1:]:
            if other.signature() != ref.signature():
                native_pair = "native" in (ref.cell[0], other.cell[0])
                out.append(Divergence(
                    "native-fallback-mismatch" if native_pair
                    else "cell-mismatch",
                    f"{':'.join(ref.cell)} vs {':'.join(other.cell)} "
                    f"disagree under {policy}",
                    program, [ref, other]))
                break

    # 2. Verdict consistency across graph engines.
    statuses = set(verdicts.values())
    if len(statuses) > 1:
        out.append(Divergence(
            "verdict-mismatch",
            f"bitmask={verdicts.get('bitmask')} "
            f"reference={verdicts.get('reference')}", program))
    crashed = any(s.startswith("crash") for s in statuses)
    verified = statuses == {"verified"}
    if crashed:
        out.append(Divergence(
            "verifier-crash", "; ".join(sorted(statuses)), program))

    off = _group(results, "off")
    monitored = _group(results, "monitored")
    discharged = _group(results, "discharged")

    if program.mode == "terminating":
        # 3a. All cells are values, byte-identical across *all* groups
        # (terminating-by-construction programs are monitor-silent).
        sigs = {r.signature() for r in results}
        kinds = {r.kind for r in results}
        if kinds and kinds != {Answer.VALUE}:
            bad = next(r for r in results if r.kind != Answer.VALUE)
            klass = ("terminating-timeout" if bad.kind == Answer.TIMEOUT
                     else "terminating-flagged"
                     if bad.kind == Answer.SC_ERROR
                     else "terminating-error")
            out.append(Divergence(
                klass, f"{':'.join(bad.cell)} gave {bad.kind}: "
                f"{bad.violation or bad.error}", program, [bad]))
        elif len(sigs) > 1:
            out.append(Divergence(
                "policy-mismatch",
                "policy groups disagree on a terminating program",
                program, [_group(results, p)[0] for p in POLICIES
                          if _group(results, p)]))
        # 3b. The static promise.
        if program.must_verify and verdicts and not verified and not crashed:
            out.append(Divergence(
                "terminating-unverified",
                f"expected VERIFIED, got {sorted(statuses)}", program))
        if program.must_discharge and discharge_complete is False:
            out.append(Divergence(
                "terminating-undischarged",
                "expected a complete residual policy", program))
    else:
        # 4a. The unmonitored cells must run out of fuel...
        for r in off:
            if r.kind != Answer.TIMEOUT:
                out.append(Divergence(
                    "diverging-survived",
                    f"{':'.join(r.cell)} gave {r.kind} "
                    f"(value={r.value!r})", program, [r]))
                break
        # 4b. ...and monitored/discharged cells must be *stopped*.
        for r in monitored + discharged:
            if r.kind not in (Answer.SC_ERROR, Answer.TIMEOUT):
                out.append(Divergence(
                    "diverging-unflagged",
                    f"{':'.join(r.cell)} gave {r.kind} "
                    f"(value={r.value!r})", program, [r]))
                break
        # 4c. A diverging program must never verify or fully discharge.
        if verified:
            out.append(Divergence(
                "diverging-verified",
                "static verifier proved a diverging-by-construction "
                "program", program))
        if discharge_complete:
            out.append(Divergence(
                "diverging-discharged",
                "residual pipeline fully discharged a diverging-by-"
                "construction program", program))

    # 5. Soundness: a completely discharged run must never be flagged.
    if discharge_complete:
        for r in discharged:
            if r.kind == Answer.SC_ERROR:
                out.append(Divergence(
                    "discharged-flagged",
                    f"{':'.join(r.cell)} raised a violation after a "
                    "complete discharge", program, [r]))
                break
    return out


class FuzzReport:
    """Aggregate statistics for one ``sized fuzz`` campaign."""

    def __init__(self):
        self.programs = 0
        self.by_mode: Dict[str, int] = {}
        self.verified = 0
        self.verify_expected = 0
        self.discharged = 0
        self.discharge_expected = 0
        self.divergences: List[Divergence] = []
        self.elapsed = 0.0

    @property
    def programs_per_sec(self) -> float:
        return self.programs / self.elapsed if self.elapsed > 0 else 0.0

    def to_json(self) -> dict:
        return {
            "schema": "sized-fuzz/v1",
            "programs": self.programs,
            "by_mode": dict(self.by_mode),
            "elapsed_sec": round(self.elapsed, 3),
            "programs_per_sec": round(self.programs_per_sec, 2),
            "verify_expected": self.verify_expected,
            "verified": self.verified,
            "discharge_expected": self.discharge_expected,
            "discharged": self.discharged,
            "divergences_found": len(self.divergences),
            "shrink_sizes": [len(d.shrunk) for d in self.divergences
                             if d.shrunk is not None],
            "divergences": [d.summary() for d in self.divergences],
        }


def run_fuzz(n: int, seed: int = 0, mode: str = "both",
             matrix: str = "full", fuel: Optional[int] = None,
             features: Optional[Sequence[str]] = None,
             shrink: bool = True, max_shrink: int = 200,
             progress=None) -> FuzzReport:
    """Generate and differentially test ``n`` programs.

    ``mode='both'`` alternates terminating/diverging; seeds are
    ``seed .. seed+n-1``, so any finding is replayable by its seed
    alone.  Divergences are shrunk greedily (``shrink=False`` skips)."""
    from repro.fuzz.shrink import shrink_divergence

    cells = default_cells(matrix)
    report = FuzzReport()
    start = time.perf_counter()
    for i in range(n):
        s = seed + i
        if mode == "both":
            pmode = "terminating" if i % 2 == 0 else "diverging"
        else:
            pmode = mode
        program = generate_program(s, pmode, features=features)
        report.programs += 1
        report.by_mode[pmode] = report.by_mode.get(pmode, 0) + 1
        result = run_matrix(program, cells=cells, fuel=fuel)
        if program.must_verify:
            report.verify_expected += 1
            if set(result.verdicts.values()) == {"verified"}:
                report.verified += 1
        if program.must_discharge:
            report.discharge_expected += 1
            if result.discharge_complete:
                report.discharged += 1
        for div in result.divergences:
            if shrink:
                shrink_divergence(div, cells=cells, fuel=fuel,
                                  max_attempts=max_shrink)
            report.divergences.append(div)
        if progress is not None:
            progress(i + 1, n, report)
    report.elapsed = time.perf_counter() - start
    return report
