"""Run-time errors of the embedded language (import-cycle-free home)."""

from __future__ import annotations


class SchemeError(Exception):
    """``errorRT``: misuse of a language construct (wrong arity, applying a
    non-function, a primitive outside its domain, ``(error ...)``, ...)."""

    def __init__(self, message: str, loc=None):
        self.loc = loc
        where = f" at {loc}" if loc is not None else ""
        super().__init__(f"{message}{where}")
        self.message = message


class BlameError(SchemeError):
    """A contract violation in the embedded language, blaming a party
    (Findler–Felleisen, §2.3).  Raised by the ``blame-error`` primitive,
    which the object-language contract library (:mod:`repro.lang.
    contracts_lib`) calls when a projection rejects a value."""

    def __init__(self, party, contract_name, value_text: str, loc=None):
        self.party = party
        self.contract_name = contract_name
        self.value_text = value_text
        super().__init__(
            f"{party} broke the contract {contract_name} on {value_text}",
            loc,
        )


class MachineTimeout(Exception):
    """The step budget ran out.  Under the *standard* semantics this is how
    tests observe divergence; under monitoring it should never fire for
    diverging programs (Corollary 3.3)."""

    def __init__(self, steps: int):
        super().__init__(f"machine exceeded {steps} steps")
        self.steps = steps


class FuelExhausted(MachineTimeout):
    """The *fuel* knob's distinct outcome: a deterministic step budget ran
    dry (``run_program(..., fuel=N)`` / ``sized run --fuel N``).

    Subclassing :class:`MachineTimeout` keeps every existing ``except
    MachineTimeout`` / ``Answer.TIMEOUT`` path working; the differential
    fuzzer catches this type specifically so a budgeted diverging program
    is distinguishable from any other non-value outcome."""

    def __init__(self, steps: int):
        super().__init__(steps)
        # the *configured* budget, verbatim — callers (serve budgets,
        # the CLI) rely on this being the real limit, 0 included
        self.limit = steps
        self.args = (f"fuel exhausted after {steps} steps",)
