"""Regenerate §5.1.2: how quickly the monitor stops diverging programs.

For each diverging program we report the wall time from program start to
``errorSC``, the number of monitored calls before detection, and — for
contrast — that the standard semantics is still running after a large step
budget.  The paper's claim: detection latency is "immeasurable" because
violations show up within the first few iterations.
"""

from __future__ import annotations

from typing import List

from repro.bench.report import fmt_ms, render_table
from repro.bench.timing import time_once
from repro.corpus import diverging_programs
from repro.corpus.registry import DivergingProgram
from repro.eval.machine import Answer, run_source
from repro.sct.monitor import SCMonitor


class DivergencePoint:
    def __init__(self, program: DivergingProgram, caught: bool,
                 seconds: float, calls: int, checks: int, blamed: str):
        self.program = program
        self.caught = caught
        self.seconds = seconds
        self.calls = calls
        self.checks = checks
        self.blamed = blamed


def run_divergence(standard_budget: int = 200_000) -> List[DivergencePoint]:
    points = []
    for prog in diverging_programs():
        monitor = SCMonitor(measures=prog.measures)
        mode = "contract" if "term" in prog.source or "terminating/c" in prog.source else "full"
        dt, answer = time_once(
            lambda: run_source(prog.source, mode=mode, monitor=monitor)
        )
        caught = answer.kind == Answer.SC_ERROR
        blamed = answer.violation.function if caught else "-"
        # Sanity: the standard semantics really diverges.
        standard = run_source(prog.source, mode="off", max_steps=standard_budget)
        assert standard.kind == Answer.TIMEOUT, prog.name
        points.append(DivergencePoint(prog, caught, dt, monitor.calls_seen,
                                      monitor.checks_done, blamed))
    return points


def render_divergence(points: List[DivergencePoint]) -> str:
    headers = ["program", "caught", "time-to-errorSC", "monitored-calls",
               "graph-checks", "offending-function"]
    rows = [
        [p.program.name, "yes" if p.caught else "NO", fmt_ms(p.seconds),
         p.calls, p.checks, p.blamed]
        for p in points
    ]
    caught = sum(1 for p in points if p.caught)
    table = render_table(
        headers, rows,
        title="§5.1.2: effectiveness on diverging programs "
              "(standard semantics times out on every row)")
    worst = max((p.calls for p in points), default=0)
    return (f"{table}\n\n{caught}/{len(points)} diverging programs stopped; "
            f"worst case saw {worst} monitored calls before detection")
