"""Benchmark: the bitmask graph engine vs the frozenset reference.

Full report: ``python -m repro bench compose``.  The same cells run as
individual pytest benchmarks in ``benchmarks/bench_compose.py``.

Three compose-heavy tiers, each timed under both engines:

* **compose-chain** — raw ``;`` throughput: left-fold a pseudo-random
  graph population at a given arity (the operation the monitor performs
  ``|S|`` times per checked call),
* **prog-check** — the monitor's incremental ``upd`` fed a long
  descending call sequence through :class:`repro.sct.monitor.SCMonitor`
  directly (composition set maintenance + ``desc?`` per call),
* **scp-closure** — phase 2 of the static analysis: the LJB worklist
  (:func:`repro.analysis.ljb.scp_check`) closing a dense synthetic
  call multigraph.

The rendered table reports the per-cell speedup factor; the acceptance
target for compose-heavy cells is ≥ 5×.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence

from repro.analysis.ljb import scp_check
from repro.bench.report import fmt_factor, fmt_ms, render_table
from repro.bench.timing import best_of
from repro.sct import bitgraph
from repro.sct.graph import SCGraph, compose_run
from repro.sct.monitor import SCMonitor


class ComposeCell:
    def __init__(self, workload: str, detail: str,
                 reference_s: float, bitmask_s: float):
        self.workload = workload
        self.detail = detail
        self.reference_s = reference_s
        self.bitmask_s = bitmask_s

    @property
    def speedup(self) -> float:
        return self.reference_s / self.bitmask_s if self.bitmask_s else 0.0


# -- deterministic graph populations -------------------------------------------


def _graph_population(m: int, count: int, seed: int = 7) -> List[SCGraph]:
    """``count`` pseudo-random normalized graphs of arity ``m``: strict
    self-arcs on every parameter (so closures complete instead of raising
    — both engines then provably do identical work) plus random cross
    arcs for diversity."""
    rng = random.Random(seed)
    graphs = []
    for _ in range(count):
        arcs = {(i, i): True for i in range(m)}
        for i in range(m):
            if rng.random() < 0.4:
                j = rng.randrange(m)
                if j != i:
                    arcs[(i, j)] = rng.random() < 0.5
        graphs.append(SCGraph([(i, r, j) for (i, j), r in arcs.items()]))
    return graphs


def _dense_edges(nodes: int, m: int, per_edge: int,
                 seed: int = 13) -> Dict:
    """A call multigraph with a cycle through every node plus chords —
    the shape that makes the LJB closure work hard."""
    rng = random.Random(seed)
    population = _graph_population(m, nodes * per_edge + 8, seed=seed)
    edges: Dict = {}
    k = 0
    for f in range(nodes):
        targets = {(f + 1) % nodes, rng.randrange(nodes)}
        for g in targets:
            bucket = edges.setdefault((f, g), set())
            for _ in range(per_edge):
                bucket.add(population[k % len(population)])
                k += 1
    return edges


# -- the three tiers -----------------------------------------------------------


def _chain_cell(m: int, length: int, repeats: int) -> ComposeCell:
    graphs = _graph_population(m, length)
    packed = [bitgraph.pack(g, m) for g in graphs]
    mk = bitgraph.masks(m)

    def run_reference():
        return compose_run(graphs)

    def run_bitmask():
        s, w = packed[0]
        for (s1, w1) in packed[1:]:
            s, w = bitgraph.compose(mk, s, w, s1, w1)
        return s, w

    ref_s, _ = best_of(run_reference, repeats)
    bit_s, _ = best_of(run_bitmask, repeats)
    return ComposeCell("compose-chain", f"arity {m}, {length} graphs",
                       ref_s, bit_s)


def countdown_args(arity: int, base: int, max_calls: int):
    """Argument vectors of a lexicographic countdown over ``arity``
    base-``base`` digits — the compose-heavy monitor workload (every
    digit pattern recurs, so the composition set grows large)."""
    seq = []
    n = base ** arity - 1
    while n >= 0 and len(seq) < max_calls:
        digits = []
        x = n
        for _ in range(arity):
            digits.append(x % base)
            x //= base
        seq.append(tuple(reversed(digits)))
        n -= 1
    return seq


def _monitor_cell(arity: int, base: int, max_calls: int,
                  repeats: int) -> ComposeCell:
    """Drive the monitor's ``upd`` directly (no machine in the way) on
    the lexicographic countdown: each checked call is dominated by the
    ``|S|`` compositions plus their ``desc?`` checks — the paper's worst
    case for monitoring, and the cell where the packed representation
    pays off hardest."""
    from repro.ds.hamt import Hamt
    from repro.lang.ast import Lam, Lit
    from repro.sexp.datum import intern
    from repro.values.env import GlobalEnv
    from repro.values.values import Closure

    params = tuple(intern(f"p{i}") for i in range(arity))
    clo = Closure(Lam(params, Lit(1), name="bench"), GlobalEnv())
    seq = countdown_args(arity, base, max_calls)

    def run(engine: str) -> Callable[[], object]:
        def go():
            monitor = SCMonitor(engine=engine)
            table = Hamt.empty()
            for args in seq:
                table = monitor.upd(table, clo, args, None)
            return table

        return go

    ref_s, _ = best_of(run("reference"), repeats)
    bit_s, _ = best_of(run("bitmask"), repeats)
    return ComposeCell("prog-check",
                       f"arity {arity}, {len(seq)} monitored calls",
                       ref_s, bit_s)


def _closure_cell(nodes: int, m: int, per_edge: int,
                  repeats: int) -> ComposeCell:
    edges = _dense_edges(nodes, m, per_edge)

    ref_s, ref = best_of(lambda: scp_check(edges, engine="reference"),
                         repeats)
    bit_s, bit = best_of(lambda: scp_check(edges, engine="bitmask"), repeats)
    assert ref.ok == bit.ok and ref.total_graphs == bit.total_graphs
    return ComposeCell("scp-closure",
                       f"{nodes} nodes, arity {m}, {per_edge}/edge",
                       ref_s, bit_s)


def run_compose(scale: str = "quick", repeats: int = 3) -> List[ComposeCell]:
    if scale == "full":
        chain = [(2, 20000), (4, 20000), (8, 10000)]
        monitors = [(4, 4, 1024), (6, 3, 729), (8, 2, 256)]
        closures = [(3, 4, 2), (4, 4, 1)]
    else:
        chain = [(2, 4000), (4, 4000), (8, 2000)]
        monitors = [(6, 3, 350), (8, 2, 256)]
        closures = [(3, 3, 2)]
    cells = [_chain_cell(m, length, repeats) for (m, length) in chain]
    for (arity, base, calls) in monitors:
        cells.append(_monitor_cell(arity, base, calls, repeats))
    for (nodes, m, per_edge) in closures:
        cells.append(_closure_cell(nodes, m, per_edge, repeats=repeats))
    return cells


def render_compose(cells: Sequence[ComposeCell]) -> str:
    headers = ["Workload", "Detail", "reference", "bitmask", "speedup"]
    body = [[c.workload, c.detail, fmt_ms(c.reference_s), fmt_ms(c.bitmask_s),
             fmt_factor(c.speedup)] for c in cells]
    table = render_table(headers, body,
                         title="Graph engine: bitmask vs frozenset reference")
    worst = min(c.speedup for c in cells)
    geo = 1.0
    for c in cells:
        geo *= c.speedup
    geo **= 1.0 / len(cells)
    return (f"{table}\n\ngeomean speedup {geo:.1f}x, worst cell "
            f"{worst:.1f}x (target: ≥5x on compose-heavy cells)")
