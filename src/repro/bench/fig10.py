"""Regenerate Figure 10: monitoring slowdown across workloads.

For each of the six panels (factorial, sum, merge-sort; direct and
interpreted) and each input size, we time three series:

* ``unchecked`` — the standard semantics,
* ``continuation-mark`` — persistent tables snapshotted in frames
  (tail-calls preserved; slowest in tight loops),
* ``imperative`` — one mutable table plus undo frames (faster per call,
  continuation growth on tail calls).

The paper's observations to reproduce (§5.1.1): factorial and all
interpreted programs show small overhead; ``sum`` shows the largest
constant factor (worst under continuation marks); ``merge-sort`` sits in
between but suffers from large-structure graph costs; and the factor stays
roughly flat as input grows.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.report import fmt_factor, fmt_ms, render_table
from repro.bench.timing import time_program
from repro.bench.workloads import SIZES, WORKLOADS
from repro.eval.machine import Answer


class Fig10Point:
    def __init__(self, workload: str, size: int, unchecked: float,
                 cm: float, imperative: float):
        self.workload = workload
        self.size = size
        self.unchecked = unchecked
        self.cm = cm
        self.imperative = imperative

    @property
    def cm_factor(self) -> float:
        return self.cm / self.unchecked if self.unchecked > 0 else float("inf")

    @property
    def imperative_factor(self) -> float:
        return self.imperative / self.unchecked if self.unchecked > 0 else float("inf")


def run_fig10(scale: str = "quick", repeats: int = 3,
              workloads: List[str] = None) -> List[Fig10Point]:
    sizes: Dict[str, List[int]] = SIZES[scale]
    chosen = workloads or list(WORKLOADS)
    points: List[Fig10Point] = []
    for name in chosen:
        source_of = WORKLOADS[name]
        for n in sizes[name]:
            src = source_of(n)
            t_off, a = time_program(src, mode="off", repeats=repeats)
            assert a.kind == Answer.VALUE, f"{name}({n}) failed: {a!r}"
            t_cm, a_cm = time_program(src, mode="full", strategy="cm",
                                      repeats=repeats)
            assert a_cm.kind == Answer.VALUE, f"{name}({n}) cm: {a_cm!r}"
            t_imp, a_imp = time_program(src, mode="full", strategy="imperative",
                                        repeats=repeats)
            assert a_imp.kind == Answer.VALUE, f"{name}({n}) imp: {a_imp!r}"
            points.append(Fig10Point(name, n, t_off, t_cm, t_imp))
    return points


def render_fig10(points: List[Fig10Point]) -> str:
    headers = ["workload", "n", "unchecked", "cont-mark", "imperative",
               "cm-slowdown", "imp-slowdown"]
    rows = []
    last = None
    for p in points:
        name = p.workload if p.workload != last else ""
        last = p.workload
        rows.append([
            name, p.size, fmt_ms(p.unchecked), fmt_ms(p.cm),
            fmt_ms(p.imperative), fmt_factor(p.cm_factor),
            fmt_factor(p.imperative_factor),
        ])
    table = render_table(
        headers, rows,
        title="Figure 10: monitoring slow-down (series = the three lines)")
    return table + "\n\n" + summarize_shape(points)


def summarize_shape(points: List[Fig10Point]) -> str:
    """The qualitative claims, checked over the measured points."""
    by_workload: Dict[str, List[Fig10Point]] = {}
    for p in points:
        by_workload.setdefault(p.workload, []).append(p)

    def worst(name: str) -> float:
        pts = by_workload.get(name, [])
        return max((p.cm_factor for p in pts), default=float("nan"))

    lines = ["shape checks (paper §5.1.1):"]
    if "sum" in by_workload and "factorial" in by_workload:
        ok = worst("sum") > worst("factorial")
        lines.append(
            f"  [{'ok' if ok else 'MISS'}] tight loop (sum, {worst('sum'):.1f}x) "
            f"suffers more than factorial ({worst('factorial'):.1f}x)")
    if "interp-sum" in by_workload and "sum" in by_workload:
        ok = worst("interp-sum") < worst("sum")
        lines.append(
            f"  [{'ok' if ok else 'MISS'}] interpreted sum "
            f"({worst('interp-sum'):.1f}x) suffers less than direct sum "
            f"({worst('sum'):.1f}x): interpretation does work between calls")
    for name, pts in by_workload.items():
        if len(pts) >= 2:
            first, last = pts[0].cm_factor, pts[-1].cm_factor
            flatish = last < first * 3 + 2
            lines.append(
                f"  [{'ok' if flatish else 'MISS'}] {name}: overhead factor "
                f"roughly flat in input size ({first:.1f}x → {last:.1f}x)")
    return "\n".join(lines)
