"""The Fig. 10 workloads, parameterized by input size.

Direct versions run on the host machine's object language; interpreted
versions run inside the compile-to-closures Scheme interpreter
(:mod:`repro.corpus.interpreter`).  Sizes are scaled relative to the
paper's Racket runs (a Python CEK machine is a few hundred times slower
than compiled Racket); the reproduced claim is the overhead *shape*, which
is size-independent in both settings.
"""

from __future__ import annotations

import random

from repro.corpus.interpreter import (
    interpreted_factorial_source,
    interpreted_msort_source,
    interpreted_sum_source,
)


def factorial_source(n: int) -> str:
    """Non-tail factorial: significant (bignum) work between calls —
    the paper's negligible-overhead case."""
    return f"""
(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))
(fact {n})
"""


def sum_source(n: int) -> str:
    """Tight tail-recursive loop: almost no work between calls — the
    paper's worst case for monitoring overhead."""
    return f"""
(define (sum n acc) (if (zero? n) acc (sum (- n 1) (+ acc n))))
(sum {n} 0)
"""


def msort_source(n: int, seed: int = 11) -> str:
    """Merge sort over a shuffled list: large data structures flow through
    the monitor — the paper's worst case for graph-construction cost."""
    rng = random.Random(seed)
    values = list(range(n))
    rng.shuffle(values)
    data = " ".join(str(v) for v in values)
    return f"""
(define (merge xs ys)
  (cond [(null? xs) ys]
        [(null? ys) xs]
        [(< (car xs) (car ys)) (cons (car xs) (merge (cdr xs) ys))]
        [else (cons (car ys) (merge xs (cdr ys)))]))
(define (split l)
  (if (or (null? l) (null? (cdr l)))
      (cons l '())
      (let ([r (split (cddr l))])
        (cons (cons (car l) (car r)) (cons (cadr l) (cdr r))))))
(define (msort l)
  (if (or (null? l) (null? (cdr l)))
      l
      (let ([halves (split l)])
        (merge (msort (car halves)) (msort (cdr halves))))))
(length (msort '({data})))
"""


WORKLOADS = {
    "factorial": factorial_source,
    "sum": sum_source,
    "merge-sort": msort_source,
    "interp-factorial": interpreted_factorial_source,
    "interp-sum": interpreted_sum_source,
    "interp-merge-sort": interpreted_msort_source,
}

# Input-size sweeps: "quick" for CI, "full" for the real figure.
SIZES = {
    "quick": {
        "factorial": [60, 120, 240],
        "sum": [300, 600, 1200],
        "merge-sort": [32, 64, 128],
        "interp-factorial": [20, 40, 80],
        "interp-sum": [30, 60, 120],
        "interp-merge-sort": [8, 16, 32],
    },
    "full": {
        "factorial": [200, 400, 800, 1600],
        "sum": [2000, 4000, 8000, 16000],
        "merge-sort": [128, 256, 512, 1024],
        "interp-factorial": [50, 100, 200, 400],
        "interp-sum": [100, 200, 400, 800],
        "interp-merge-sort": [16, 32, 64, 128],
    },
}
