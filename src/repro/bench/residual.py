"""Benchmark: residual enforcement (``bench residual``).

The discharge pipeline's payoff, measured: on the corpus subset the §4
verifier fully discharges, a monitored (λSCT, cm-strategy) run under the
residual policy should cost ~nothing over the unmonitored machine, while
full monitoring pays its usual multiple.  Three suites per program, all
on the compiled machine:

* ``unmonitored`` — mode ``off`` (the floor),
* ``monitored`` — mode ``full``, every call through the monitor,
* ``discharged`` — mode ``full`` under the program's
  :class:`~repro.analysis.discharge.ResidualPolicy`: statically proven λs
  take the monitor-free path, residual checks remain for anything else
  (on this subset: nothing).

Methodology follows ``bench interp``: Table 1 workloads amplified to a
per-cell time target (calibrated once, on the unmonitored machine),
best-of-``repeats`` with the three suites interleaved rep by rep and the
host GC disabled during measurement.  Policies and certificates are
computed (and cached) before the clock starts — the verification cost is
exactly what the cache amortizes away, and ``verify_s`` reports it per
program for the one cold run.

Acceptance (tracked in ``BENCH_residual.json``): **discharged geomean
runtime ≤ 1.15× unmonitored**, against ≥ 2× for full monitoring.
"""

from __future__ import annotations

import gc
import json
import platform
import time
from typing import Dict, List, Optional, Sequence

from repro.analysis.discharge import VerificationCache, discharge_for_run
from repro.bench.interp import _SCALES, amplify_program, geomean
from repro.bench.report import fmt_factor, fmt_ms, render_table
from repro.corpus import all_programs
from repro.eval.machine import Answer, make_env, run_program
from repro.lang.parser import parse_program
from repro.sct.monitor import SCMonitor

#: suite name -> (mode, with policy?)
SUITES = ("unmonitored", "monitored", "discharged")

#: The CI smoke subset: plain descent, the nested-call running example,
#: an accumulator loop, and the dispatch-heavy NFA.
SMOKE_PROGRAMS = ("sct-1", "sct-3", "lh-tfact", "nfa")

ACCEPTANCE_DISCHARGED = 1.15
ACCEPTANCE_MONITORED = 2.0


class ResidualCell:
    """One program's three-suite timing plus its discharge facts."""

    __slots__ = ("program", "amplify", "unmonitored_s", "monitored_s",
                 "discharged_s", "verify_s", "skipped_labels")

    def __init__(self, program: str, amplify: int, unmonitored_s: float,
                 monitored_s: float, discharged_s: float, verify_s: float,
                 skipped_labels: int):
        self.program = program
        self.amplify = amplify
        self.unmonitored_s = unmonitored_s
        self.monitored_s = monitored_s
        self.discharged_s = discharged_s
        self.verify_s = verify_s
        self.skipped_labels = skipped_labels

    @property
    def monitored_ratio(self) -> float:
        return (self.monitored_s / self.unmonitored_s
                if self.unmonitored_s else 0.0)

    @property
    def discharged_ratio(self) -> float:
        return (self.discharged_s / self.unmonitored_s
                if self.unmonitored_s else 0.0)

    def __repr__(self) -> str:
        return (f"ResidualCell({self.program}: monitored "
                f"{self.monitored_ratio:.2f}x, discharged "
                f"{self.discharged_ratio:.2f}x)")


def discharged_subset(programs=None) -> List[tuple]:
    """``(corpus program, parsed, DischargeResult)`` for every corpus
    program whose workload fully discharges (the verified cm-subset)."""
    subset = []
    for prog in (programs if programs is not None else all_programs()):
        parsed = parse_program(prog.source)
        result = discharge_for_run(parsed, text=prog.source,
                                   result_kinds=prog.result_kinds)
        if result.complete and result.policy:
            subset.append((prog, parsed, result))
    return subset


def run_residual(scale: str = "quick", repeats: Optional[int] = None,
                 programs: Optional[Sequence[str]] = None
                 ) -> List[ResidualCell]:
    """Time every discharged-subset program across the three suites."""
    if scale not in _SCALES:
        raise ValueError(f"unknown scale: {scale!r}")
    target, default_repeats, max_amplify = _SCALES[scale]
    if repeats is None:
        repeats = default_repeats
    corpus = all_programs()
    if scale == "smoke" and programs is None:
        programs = SMOKE_PROGRAMS
    if programs is not None:
        wanted = set(programs)
        corpus = [p for p in corpus if p.name in wanted]

    env = make_env(machine="compiled")
    cells: List[ResidualCell] = []
    for prog, parsed, result in discharged_subset(corpus):
        # One cold verification, timed for the report against an empty
        # cache (discharged_subset's own run warmed the default cache, so
        # nothing else in this function pays for verification).
        t0 = time.perf_counter()
        discharge_for_run(parse_program(prog.source), text=prog.source,
                          result_kinds=prog.result_kinds,
                          cache=VerificationCache())
        verify_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        answer = run_program(parsed, mode="off", env=env, machine="compiled")
        if answer.kind != Answer.VALUE:
            raise RuntimeError(f"{prog.name}: calibration failed: {answer!r}")
        dt = time.perf_counter() - t0
        factor = max(1, min(max_amplify, int(target / max(dt, 1e-6))))
        amplified = amplify_program(parsed, factor)

        best = {suite: float("inf") for suite in SUITES}
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(repeats):
                for suite in SUITES:
                    mode = "off" if suite == "unmonitored" else "full"
                    policy = (result.policy if suite == "discharged"
                              else None)
                    monitor = SCMonitor(measures=prog.measures)
                    t0 = time.perf_counter()
                    answer = run_program(
                        amplified, mode=mode, strategy="cm",
                        monitor=monitor, env=env, machine="compiled",
                        discharge=policy,
                    )
                    dt = time.perf_counter() - t0
                    if answer.kind != Answer.VALUE:
                        raise RuntimeError(
                            f"{prog.name} [{suite}] failed: {answer!r}")
                    if suite == "discharged" and monitor.calls_seen:
                        raise RuntimeError(
                            f"{prog.name}: discharged run still monitored "
                            f"{monitor.calls_seen} calls")
                    best[suite] = min(best[suite], dt)
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()
        cells.append(ResidualCell(
            prog.name, factor, best["unmonitored"], best["monitored"],
            best["discharged"], verify_s,
            len(result.policy.skip_labels)))
    return cells


def residual_geomeans(cells: Sequence[ResidualCell]) -> Dict[str, float]:
    return {
        "monitored": geomean([c.monitored_ratio for c in cells]),
        "discharged": geomean([c.discharged_ratio for c in cells]),
    }


def render_residual(cells: Sequence[ResidualCell]) -> str:
    headers = ["Program", "amplify", "λs skipped", "verify", "unmon.",
               "monitored", "discharged", "mon/unm", "dis/unm"]
    body = [[c.program, f"×{c.amplify}", str(c.skipped_labels),
             fmt_ms(c.verify_s), fmt_ms(c.unmonitored_s),
             fmt_ms(c.monitored_s), fmt_ms(c.discharged_s),
             fmt_factor(c.monitored_ratio), fmt_factor(c.discharged_ratio)]
            for c in cells]
    table = render_table(
        headers, body,
        title="Residual enforcement: discharged vs full monitoring "
              "(compiled machine, cm strategy)")
    means = residual_geomeans(cells)
    lines = [table, ""]
    lines.append(f"monitored    geomean {means['monitored']:.2f}x "
                 f"the unmonitored machine (target >= "
                 f"{ACCEPTANCE_MONITORED:.0f}x to matter)")
    lines.append(f"discharged   geomean {means['discharged']:.2f}x "
                 f"(acceptance <= {ACCEPTANCE_DISCHARGED:.2f}x)")
    ok = (means["discharged"] <= ACCEPTANCE_DISCHARGED
          and means["monitored"] >= ACCEPTANCE_MONITORED)
    lines.append(f"\nacceptance: {'PASS' if ok else 'MISS'}")
    return "\n".join(lines)


def residual_report(cells: Sequence[ResidualCell], scale: str,
                    repeats: Optional[int] = None) -> dict:
    """The machine-readable report (``BENCH_residual.json``)."""
    if repeats is None and scale in _SCALES:
        repeats = _SCALES[scale][1]
    means = residual_geomeans(cells)
    return {
        "schema": "bench-residual/v1",
        "scale": scale,
        "repeats": repeats,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cells": [
            {
                "program": c.program,
                "amplify": c.amplify,
                "skipped_labels": c.skipped_labels,
                "verify_s": c.verify_s,
                "unmonitored_s": c.unmonitored_s,
                "monitored_s": c.monitored_s,
                "discharged_s": c.discharged_s,
                "monitored_ratio": c.monitored_ratio,
                "discharged_ratio": c.discharged_ratio,
            }
            for c in cells
        ],
        "geomeans": means,
        "acceptance": {
            "discharged_ratio": means["discharged"],
            "discharged_target": ACCEPTANCE_DISCHARGED,
            "monitored_ratio": means["monitored"],
            "monitored_target": ACCEPTANCE_MONITORED,
            "pass": (means["discharged"] <= ACCEPTANCE_DISCHARGED
                     and means["monitored"] >= ACCEPTANCE_MONITORED),
        },
    }


def write_residual_json(cells: Sequence[ResidualCell], path: str,
                        scale: str, repeats: Optional[int] = None) -> None:
    with open(path, "w") as f:
        json.dump(residual_report(cells, scale, repeats), f, indent=2)
        f.write("\n")
