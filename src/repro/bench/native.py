"""Benchmark: the native execution tier (``bench native``).

The payoff of compiling discharged code all the way to Python, measured:
on the corpus subset the §4 verifier fully discharges, the same program
under the same residual policy is timed on all three machines — ``tree``
(the AST walker), ``compiled`` (closure compilation over slot frames)
and ``native`` (exec-generated Python bodies driven by the trampoline).
Only the machine varies; mode (``full``), strategy (``cm``) and the
program's :class:`~repro.analysis.discharge.ResidualPolicy` are held
fixed, so every cell runs the monitor-free path end to end.

Methodology — loop-harness amplification
----------------------------------------

``bench interp``/``bench residual`` amplify by repeating the final form
textually, which re-pays the per-form fixed costs (top-level dispatch,
native-readiness walk) on every iteration and on every machine alike —
an additive constant that *flattens* machine ratios without touching a
single executed user instruction.  An execution-tier benchmark wants the
opposite: amplification that itself runs at each machine's own speed.
So the final form is wrapped in a *discharged tail-recursive driver
loop*::

    (define (bench-iter i)
      (if (zero? i) 0 (begin <final form> (bench-iter (- i 1)))))
    (bench-iter <k>)

``bench-iter`` descends on a natural and fully discharges together with
the rest of the program, so on the native machine the amplification loop
is itself native code.  ``k`` is calibrated per program against a
per-cell time target on the *tree* machine (the slowest), probed with a
short harness run so the measured per-iteration cost already includes
the loop.  Best-of-``repeats`` with the three machines interleaved rep
by rep, host GC disabled, certificates computed before the clock starts
(``verify_s`` reports the one cold verification).

Acceptance (tracked in ``BENCH_native.json``): **native geomean ≥ 10×
the tree machine**, and native at least as fast as the compiled machine
on every program.
"""

from __future__ import annotations

import gc
import json
import platform
import time
from typing import Dict, List, Optional, Sequence

from repro.analysis.discharge import VerificationCache, discharge_for_run
from repro.bench.interp import geomean
from repro.bench.report import fmt_factor, fmt_ms, render_table
from repro.bench.residual import discharged_subset
from repro.corpus import all_programs
from repro.eval.machine import Answer, make_env, run_program
from repro.lang.parser import parse_program
from repro.sct.monitor import SCMonitor

MACHINES = ("tree", "compiled", "native")

#: The CI smoke subset: plain list descent, a permuting three-arg loop,
#: an accumulator factorial, and the dispatch-heavy NFA.
SMOKE_PROGRAMS = ("sct-1", "sct-4", "lh-tfact", "nfa")

#: scale -> (per-cell tree-machine time target s, repeats, max iterations)
_SCALES = {
    "smoke": (0.060, 3, 100_000),
    "quick": (0.150, 5, 100_000),
    "full": (0.400, 7, 400_000),
}

#: Calibration probe: iterations for the short tree-machine run whose
#: per-iteration cost sets k.  Large enough that the loop dominates the
#: per-run fixed costs, small enough to stay cheap on slow programs.
_PROBE_ITERATIONS = 32

ACCEPTANCE_GEOMEAN = 10.0    # native geomean vs the tree machine
ACCEPTANCE_VS_COMPILED = 1.0  # native >= compiled, per program


def harness_amplified(source: str, iterations: int) -> str:
    """``source`` with its final top-level form wrapped in the discharged
    ``bench-iter`` driver loop (see the module docstring)."""
    text = source.rstrip()
    depth = 0
    i = len(text) - 1
    while i >= 0:
        c = text[i]
        if c in ")]":
            depth += 1
        elif c in "([":
            depth -= 1
            if depth == 0:
                break
        i -= 1
    if i < 0:
        raise ValueError("no final call form to wrap")
    head, final = text[:i], text[i:]
    return (f"{head}\n"
            f"(define (bench-iter i)\n"
            f"  (if (zero? i) 0 (begin {final} (bench-iter (- i 1)))))\n"
            f"(bench-iter {iterations})\n")


class NativeCell:
    """One program's three-machine timing plus its discharge facts."""

    __slots__ = ("program", "iterations", "tree_s", "compiled_s",
                 "native_s", "verify_s", "skipped_labels")

    def __init__(self, program: str, iterations: int, tree_s: float,
                 compiled_s: float, native_s: float, verify_s: float,
                 skipped_labels: int):
        self.program = program
        self.iterations = iterations
        self.tree_s = tree_s
        self.compiled_s = compiled_s
        self.native_s = native_s
        self.verify_s = verify_s
        self.skipped_labels = skipped_labels

    @property
    def tree_ratio(self) -> float:
        """tree / native — the headline speedup."""
        return self.tree_s / self.native_s if self.native_s else 0.0

    @property
    def compiled_ratio(self) -> float:
        """compiled / native — must stay >= 1.0 everywhere."""
        return self.compiled_s / self.native_s if self.native_s else 0.0

    def __repr__(self) -> str:
        return (f"NativeCell({self.program}: tree {self.tree_ratio:.1f}x, "
                f"compiled {self.compiled_ratio:.2f}x)")


def _discharged_harness(prog, iterations: int, cache=None):
    """Parse + discharge the harnessed program; raises when the harness
    does not fully discharge (the corpus subset guarantees it should)."""
    src = harness_amplified(prog.source, iterations)
    parsed = parse_program(src)
    result = discharge_for_run(parsed, text=src,
                               result_kinds=prog.result_kinds,
                               cache=cache)
    if not (result.complete and result.policy):
        raise RuntimeError(
            f"{prog.name}: bench-iter harness failed to discharge")
    return parsed, result


def run_native(scale: str = "quick", repeats: Optional[int] = None,
               programs: Optional[Sequence[str]] = None
               ) -> List[NativeCell]:
    """Time every discharged-subset program on the three machines."""
    if scale not in _SCALES:
        raise ValueError(f"unknown scale: {scale!r}")
    target, default_repeats, max_iterations = _SCALES[scale]
    if repeats is None:
        repeats = default_repeats
    corpus = all_programs()
    if scale == "smoke" and programs is None:
        programs = SMOKE_PROGRAMS
    if programs is not None:
        wanted = set(programs)
        corpus = [p for p in corpus if p.name in wanted]

    env_tree = make_env(machine="tree")
    env_compiled = make_env(machine="compiled")  # shared with native
    cells: List[NativeCell] = []
    for prog, _, _ in discharged_subset(corpus):
        # One cold verification of the harness, timed for the report.
        t0 = time.perf_counter()
        _discharged_harness(prog, _PROBE_ITERATIONS,
                            cache=VerificationCache())
        verify_s = time.perf_counter() - t0

        # Calibrate k on the tree machine with a short harness run so
        # the measured per-iteration cost already includes the loop.
        parsed, result = _discharged_harness(prog, _PROBE_ITERATIONS)
        t0 = time.perf_counter()
        answer = run_program(parsed, mode="full", strategy="cm",
                             monitor=SCMonitor(measures=prog.measures),
                             env=env_tree, machine="tree",
                             discharge=result.policy)
        dt = time.perf_counter() - t0
        if answer.kind != Answer.VALUE:
            raise RuntimeError(f"{prog.name}: calibration failed: {answer!r}")
        iterations = max(1, min(max_iterations,
                                int(_PROBE_ITERATIONS * target
                                    / max(dt, 1e-6))))
        parsed, result = _discharged_harness(prog, iterations)

        best = {machine: float("inf") for machine in MACHINES}
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(repeats):
                for machine in MACHINES:
                    env = env_tree if machine == "tree" else env_compiled
                    monitor = SCMonitor(measures=prog.measures)
                    t0 = time.perf_counter()
                    answer = run_program(
                        parsed, mode="full", strategy="cm",
                        monitor=monitor, env=env, machine=machine,
                        discharge=result.policy,
                    )
                    dt = time.perf_counter() - t0
                    if answer.kind != Answer.VALUE:
                        raise RuntimeError(
                            f"{prog.name} [{machine}] failed: {answer!r}")
                    if answer.tier != machine:
                        raise RuntimeError(
                            f"{prog.name} [{machine}] ran on tier "
                            f"{answer.tier!r}")
                    if monitor.calls_seen:
                        raise RuntimeError(
                            f"{prog.name} [{machine}]: discharged run "
                            f"still monitored {monitor.calls_seen} calls")
                    best[machine] = min(best[machine], dt)
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()
        cells.append(NativeCell(
            prog.name, iterations, best["tree"], best["compiled"],
            best["native"], verify_s, len(result.policy.skip_labels)))
    return cells


def native_geomeans(cells: Sequence[NativeCell]) -> Dict[str, float]:
    return {
        "tree": geomean([c.tree_ratio for c in cells]),
        "compiled": geomean([c.compiled_ratio for c in cells]),
    }


def native_acceptance(cells: Sequence[NativeCell]) -> bool:
    means = native_geomeans(cells)
    return (means["tree"] >= ACCEPTANCE_GEOMEAN
            and all(c.compiled_ratio >= ACCEPTANCE_VS_COMPILED
                    for c in cells))


def render_native(cells: Sequence[NativeCell]) -> str:
    headers = ["Program", "iterations", "λs skipped", "verify", "tree",
               "compiled", "native", "tree/nat", "comp/nat"]
    body = [[c.program, f"×{c.iterations}", str(c.skipped_labels),
             fmt_ms(c.verify_s), fmt_ms(c.tree_s), fmt_ms(c.compiled_s),
             fmt_ms(c.native_s), fmt_factor(c.tree_ratio),
             fmt_factor(c.compiled_ratio)]
            for c in cells]
    table = render_table(
        headers, body,
        title="Native tier: three machines on the fully-discharged "
              "corpus (mode full, cm strategy, residual policy)")
    means = native_geomeans(cells)
    slowest = min(cells, key=lambda c: c.compiled_ratio)
    lines = [table, ""]
    lines.append(f"native vs tree      geomean {means['tree']:.2f}x "
                 f"(acceptance >= {ACCEPTANCE_GEOMEAN:.0f}x)")
    lines.append(f"native vs compiled  geomean {means['compiled']:.2f}x "
                 f"(acceptance >= {ACCEPTANCE_VS_COMPILED:.1f}x on every "
                 f"program; worst: {slowest.program} "
                 f"{slowest.compiled_ratio:.2f}x)")
    lines.append(
        f"\nacceptance: {'PASS' if native_acceptance(cells) else 'MISS'}")
    return "\n".join(lines)


def native_report(cells: Sequence[NativeCell], scale: str,
                  repeats: Optional[int] = None) -> dict:
    """The machine-readable report (``BENCH_native.json``)."""
    if repeats is None and scale in _SCALES:
        repeats = _SCALES[scale][1]
    means = native_geomeans(cells)
    return {
        "schema": "bench-native/v1",
        "scale": scale,
        "repeats": repeats,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cells": [
            {
                "program": c.program,
                "iterations": c.iterations,
                "skipped_labels": c.skipped_labels,
                "verify_s": c.verify_s,
                "tree_s": c.tree_s,
                "compiled_s": c.compiled_s,
                "native_s": c.native_s,
                "tree_ratio": c.tree_ratio,
                "compiled_ratio": c.compiled_ratio,
            }
            for c in cells
        ],
        "geomeans": means,
        "acceptance": {
            "tree_geomean": means["tree"],
            "tree_target": ACCEPTANCE_GEOMEAN,
            "compiled_worst": min((c.compiled_ratio for c in cells),
                                  default=0.0),
            "compiled_target": ACCEPTANCE_VS_COMPILED,
            "pass": native_acceptance(cells),
        },
    }


def write_native_json(cells: Sequence[NativeCell], path: str,
                      scale: str, repeats: Optional[int] = None) -> None:
    with open(path, "w") as f:
        json.dump(native_report(cells, scale, repeats), f, indent=2)
        f.write("\n")
