"""Ablation over the §5 implementation choices.

Knobs measured on a fixed workload mix (a tight loop, a structural sort,
and the ho-sc-ack closure tangle):

* table strategy: continuation-mark vs imperative,
* exponential backoff on/off,
* table keying: per-closure identity vs per-λ structural hash,
* loop-entry-only monitoring (0-CFA cycle labels) vs monitor-everything,
* value order: size (default) vs Fig. 5 containment.

Each configuration reports wall time, slowdown vs unchecked, monitored
calls, and graph checks — making the overhead/precision trade-offs of the
paper's optimizations concrete.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.analysis.callgraph import loop_entry_labels
from repro.bench.report import fmt_factor, fmt_ms, render_table
from repro.bench.timing import best_of
from repro.bench.workloads import msort_source, sum_source
from repro.corpus.registry import REGISTRY
from repro.eval.machine import Answer, run_program
from repro.lang.parser import parse_program
from repro.sct.monitor import SCMonitor
from repro.sct.order import ContainmentOrder


class AblationPoint:
    def __init__(self, workload: str, config: str, seconds: float,
                 factor: float, calls: int, checks: int, outcome: str):
        self.workload = workload
        self.config = config
        self.seconds = seconds
        self.factor = factor
        self.calls = calls
        self.checks = checks
        self.outcome = outcome


def _workloads(scale: str):
    sizes = {"quick": (600, 64), "full": (6000, 512)}[scale]
    return [
        ("sum", sum_source(sizes[0])),
        ("merge-sort", msort_source(sizes[1])),
        ("ho-sc-ack", REGISTRY["ho-sc-ack"].source),
    ]


def _configs(program) -> List[tuple]:
    def plain() -> SCMonitor:
        return SCMonitor()

    def backoff() -> SCMonitor:
        return SCMonitor(backoff=True)

    def label_keyed() -> SCMonitor:
        return SCMonitor(keying="label")

    def containment() -> SCMonitor:
        return SCMonitor(order=ContainmentOrder())

    def loop_entries() -> SCMonitor:
        return SCMonitor(loop_entries=loop_entry_labels(program))

    return [
        ("cm", "cm", plain),
        ("imperative", "imperative", plain),
        ("cm+backoff", "cm", backoff),
        ("cm+label-keying", "cm", label_keyed),
        ("cm+loop-entries", "cm", loop_entries),
        ("cm+containment-order", "cm", containment),
    ]


def run_ablation(scale: str = "quick", repeats: int = 3) -> List[AblationPoint]:
    points: List[AblationPoint] = []
    for name, src in _workloads(scale):
        program = parse_program(src)
        base_t, base_a = best_of(
            lambda: run_program(program, mode="off"), repeats)
        points.append(AblationPoint(name, "unchecked", base_t, 1.0, 0, 0,
                                    _outcome(base_a)))
        for config_name, strategy, factory in _configs(program):
            monitor_holder = {}

            def run():
                monitor = factory()
                monitor_holder["m"] = monitor
                return run_program(program, mode="full", strategy=strategy,
                                   monitor=monitor)

            dt, answer = best_of(run, repeats)
            monitor = monitor_holder["m"]
            points.append(AblationPoint(
                name, config_name, dt, dt / base_t if base_t else float("inf"),
                monitor.calls_seen, monitor.checks_done, _outcome(answer)))
    return points


def _outcome(answer) -> str:
    if answer.kind == Answer.VALUE:
        return "value"
    if answer.kind == Answer.SC_ERROR:
        return "errorSC"
    return answer.kind


def render_ablation(points: List[AblationPoint]) -> str:
    headers = ["workload", "configuration", "time", "slowdown",
               "monitored-calls", "graph-checks", "outcome"]
    rows = []
    last = None
    for p in points:
        name = p.workload if p.workload != last else ""
        last = p.workload
        rows.append([name, p.config, fmt_ms(p.seconds), fmt_factor(p.factor),
                     p.calls, p.checks, p.outcome])
    return render_table(headers, rows,
                        title="Ablation: §5 implementation choices")
