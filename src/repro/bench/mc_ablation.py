"""Ablation for the monotonicity-constraint extension (§6.2 future work).

Two questions, answered on the paper's own corpus:

1. **Precision** — re-run the Table 1 static column with MC evidence.
   MC must not lose any SC-verified row (MC graphs entail their SC
   projections) and gains the counting-up row ``lh-range`` without its
   custom measure.  Rows whose failure is unrelated to ordering
   (higher-order self-application, uninterpreted arithmetic, constant
   ceilings) stay failed — the extension is not a free lunch.
2. **Cost** — dynamic monitoring overhead of MC vs SC graphs.  An MC
   check closes an O((2n)³) constraint matrix where SC compares n² value
   pairs, so the tight-loop slowdown quantifies what the extra precision
   costs at run time.
"""

from __future__ import annotations

from typing import List

from repro.bench.report import fmt_factor, fmt_ms, render_table
from repro.bench.timing import best_of
from repro.bench.workloads import msort_source, sum_source
from repro.corpus.registry import all_programs
from repro.eval.machine import Answer, run_program
from repro.lang.parser import parse_program
from repro.mc.monitor import MCMonitor
from repro.mc.static import verify_program_mc
from repro.sct.monitor import SCMonitor
from repro.symbolic.verify import verify_program


class MCStaticRow:
    def __init__(self, name: str, sc: bool, mc: bool, note: str):
        self.name = name
        self.sc = sc
        self.mc = mc
        self.note = note


class MCDynamicRow:
    def __init__(self, workload: str, monitor: str, seconds: float,
                 factor: float, outcome: str):
        self.workload = workload
        self.monitor = monitor
        self.seconds = seconds
        self.factor = factor
        self.outcome = outcome


def run_mc_static() -> List[MCStaticRow]:
    """SC vs MC static verdicts over every corpus row with an entry."""
    rows: List[MCStaticRow] = []
    for prog in all_programs():
        if prog.entry is None:
            continue
        entry, kinds = prog.entry
        program = parse_program(prog.source)
        sc = verify_program(program, entry, kinds,
                            result_kinds=prog.result_kinds).verified
        mc = verify_program_mc(program, entry, kinds,
                               result_kinds=prog.result_kinds).verified
        if mc and not sc:
            note = "gained by MC"
        elif sc and not mc:
            note = "LOST (bug: MC must subsume SC)"
        elif not sc:
            note = "unverified under both"
        else:
            note = ""
        rows.append(MCStaticRow(prog.name, sc, mc, note))
    return rows


_DYNAMIC_WORKLOADS = {
    "quick": [("sum", sum_source(600)), ("merge-sort", msort_source(64))],
    "full": [("sum", sum_source(6000)), ("merge-sort", msort_source(512))],
}

RANGE_SOURCE = """
(define (range2 lo hi)
  (if (>= lo hi) '() (cons lo (range2 (+ lo 1) hi))))
(length (range2 0 %N%))
"""


def run_mc_dynamic(scale: str = "quick", repeats: int = 3) -> List[MCDynamicRow]:
    rows: List[MCDynamicRow] = []
    workloads = list(_DYNAMIC_WORKLOADS[scale])
    n = 400 if scale == "quick" else 4000
    workloads.append(("count-up", RANGE_SOURCE.replace("%N%", str(n))))
    for name, src in workloads:
        program = parse_program(src)
        base_t, base_a = best_of(lambda: run_program(program, mode="off"),
                                 repeats)
        rows.append(MCDynamicRow(name, "unchecked", base_t, 1.0,
                                 _outcome(base_a)))
        for label, factory in (
            ("sc", SCMonitor),
            ("sc+measure" if name == "count-up" else "sc+backoff",
             (lambda: SCMonitor(
                 measures={"range2": lambda a: (a[1] - a[0],)}))
             if name == "count-up" else (lambda: SCMonitor(backoff=True))),
            ("mc", MCMonitor),
            ("mc+backoff", lambda: MCMonitor(backoff=True)),
        ):
            dt, answer = best_of(
                lambda: run_program(program, mode="full", monitor=factory()),
                repeats)
            rows.append(MCDynamicRow(
                name, label, dt, dt / base_t if base_t else float("inf"),
                _outcome(answer)))
    return rows


def _outcome(answer) -> str:
    if answer.kind == Answer.VALUE:
        return "value"
    if answer.kind == Answer.SC_ERROR:
        return "errorSC"
    return answer.kind


def render_mc(static_rows: List[MCStaticRow],
              dynamic_rows: List[MCDynamicRow]) -> str:
    static_table = render_table(
        ["program", "static-SC", "static-MC", "note"],
        [[r.name, "Y" if r.sc else "N", "Y" if r.mc else "N", r.note]
         for r in static_rows],
        title="MC extension: static precision vs SC (Table 1 column)",
    )
    last = None
    dyn = []
    for r in dynamic_rows:
        name = r.workload if r.workload != last else ""
        last = r.workload
        dyn.append([name, r.monitor, fmt_ms(r.seconds),
                    fmt_factor(r.factor), r.outcome])
    dynamic_table = render_table(
        ["workload", "monitor", "time", "slowdown", "outcome"],
        dyn, title="MC extension: dynamic overhead vs SC",
    )
    gained = [r.name for r in static_rows if r.mc and not r.sc]
    lost = [r.name for r in static_rows if r.sc and not r.mc]
    summary = [f"\nrows gained by MC: {', '.join(gained) or 'none'}",
               f"rows lost by MC:   {', '.join(lost) or 'none (as required)'}"]
    return static_table + "\n\n" + dynamic_table + "\n" + "\n".join(summary)
