"""Benchmark: the compiled machine vs the tree machine (``bench interp``).

Full report: ``python -m repro bench interp`` (writes ``BENCH_interp.json``
alongside the rendered table; ``--smoke`` runs the CI subset).  The same
cells run as individual pytest benchmarks in ``benchmarks/bench_interp.py``.

Methodology
-----------

* **Workloads** are the Table 1 corpus programs (the paper's §5.1.1
  evaluation set), each *amplified* by repeating its final top-level call
  until one tree-machine run meets a per-cell time target — so the cells
  time interpretation, not environment setup, while keeping every
  program's own shape (its measures, its higher-order structure, its data
  sizes).  The amplification factor is calibrated once per program on the
  tree machine and shared by every suite and both machines.
* **Suites**: ``unmonitored`` (mode ``off``), ``cm`` (λSCT under the
  continuation-mark strategy — the acceptance suite), and ``imperative``
  (λSCT under the mutable-table strategy).
* **Timing** is best-of-``repeats`` with the two machines interleaved
  rep by rep (so scheduler drift hits both alike) and the host GC
  disabled during measurement, pytest-benchmark style.  Parsing,
  resolution, and prelude construction happen before the clock starts —
  the paper's timings exclude compilation, and so do these.

The acceptance criterion tracked per PR: **≥ 3× geomean speedup on the
``cm`` suite**.
"""

from __future__ import annotations

import gc
import json
import math
import platform
import time
from typing import Dict, List, Optional, Sequence

from repro.bench.report import fmt_factor, fmt_ms, render_table
from repro.corpus import all_programs
from repro.corpus.registry import CorpusProgram
from repro.eval.machine import Answer, make_env, run_program
from repro.lang.parser import parse_program
from repro.lang.program import Program
from repro.sct.monitor import SCMonitor

#: suite name -> (mode, strategy)
SUITES: Dict[str, tuple] = {
    "unmonitored": ("off", "cm"),
    "cm": ("full", "cm"),
    "imperative": ("full", "imperative"),
}

#: The CI smoke subset: small but shape-diverse (plain descent, custom
#: measure, higher-order, and a composition-heavy multi-argument loop).
SMOKE_PROGRAMS = ("sct-1", "sct-3", "lh-gcd", "ho-sc-ack")

ACCEPTANCE_SUITE = "cm"
ACCEPTANCE_TARGET = 3.0

_SCALES = {
    # scale: (per-cell time target for calibration, repeats, max amplify)
    "smoke": (0.010, 3, 50),
    "quick": (0.040, 5, 400),
    "full": (0.120, 7, 1200),
}


class InterpCell:
    """One (suite, program) cell: best-of times for both machines."""

    __slots__ = ("suite", "program", "amplify", "tree_s", "compiled_s")

    def __init__(self, suite: str, program: str, amplify: int,
                 tree_s: float, compiled_s: float):
        self.suite = suite
        self.program = program
        self.amplify = amplify
        self.tree_s = tree_s
        self.compiled_s = compiled_s

    @property
    def speedup(self) -> float:
        return self.tree_s / self.compiled_s if self.compiled_s else 0.0

    def __repr__(self) -> str:
        return (f"InterpCell({self.suite}/{self.program}: "
                f"{self.speedup:.2f}x)")


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def amplify_program(program: Program, factor: int) -> Program:
    """Repeat the final top-level form ``factor`` times.  Each repetition
    is a fresh top-level evaluation — monitoring state starts clean per
    form — so this scales work without changing any single extent."""
    if factor <= 1:
        return program
    return Program(program.forms + (program.forms[-1],) * (factor - 1),
                   program.source)


def _calibrate(parsed: Program, prog: CorpusProgram, env, target: float,
               max_amplify: int) -> int:
    t0 = time.perf_counter()
    answer = run_program(parsed, mode="full", strategy="cm",
                         monitor=SCMonitor(measures=prog.measures),
                         env=env, machine="tree")
    dt = time.perf_counter() - t0
    if answer.kind != Answer.VALUE:
        raise RuntimeError(f"{prog.name}: calibration run failed: {answer!r}")
    return max(1, min(max_amplify, int(target / max(dt, 1e-6))))


def run_interp(
    scale: str = "quick",
    repeats: Optional[int] = None,
    suites: Optional[Sequence[str]] = None,
    programs: Optional[Sequence[str]] = None,
) -> List[InterpCell]:
    """Time every (suite, corpus program) cell on both machines."""
    if scale not in _SCALES:
        raise ValueError(f"unknown scale: {scale!r}")
    target, default_repeats, max_amplify = _SCALES[scale]
    if repeats is None:
        repeats = default_repeats
    chosen_suites = list(suites) if suites else list(SUITES)
    corpus = all_programs()
    if scale == "smoke" and programs is None:
        programs = SMOKE_PROGRAMS
    if programs is not None:
        wanted = set(programs)
        corpus = [p for p in corpus if p.name in wanted]

    envs = {m: make_env(machine=m) for m in ("tree", "compiled")}
    cells: List[InterpCell] = []
    for prog in corpus:
        parsed = parse_program(prog.source)
        factor = _calibrate(parsed, prog, envs["tree"], target, max_amplify)
        amplified = amplify_program(parsed, factor)
        for suite in chosen_suites:
            mode, strategy = SUITES[suite]
            best = {"tree": float("inf"), "compiled": float("inf")}
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                for _ in range(repeats):
                    for machine in ("tree", "compiled"):
                        monitor = SCMonitor(measures=prog.measures)
                        t0 = time.perf_counter()
                        answer = run_program(
                            amplified, mode=mode, strategy=strategy,
                            monitor=monitor, env=envs[machine],
                            machine=machine,
                        )
                        dt = time.perf_counter() - t0
                        if answer.kind != Answer.VALUE:
                            raise RuntimeError(
                                f"{prog.name} [{suite}/{machine}] failed: "
                                f"{answer!r}")
                        best[machine] = min(best[machine], dt)
            finally:
                if gc_was_enabled:
                    gc.enable()
                    gc.collect()
            cells.append(InterpCell(suite, prog.name, factor,
                                    best["tree"], best["compiled"]))
    return cells


def suite_geomeans(cells: Sequence[InterpCell]) -> Dict[str, float]:
    result: Dict[str, float] = {}
    for suite in SUITES:
        speedups = [c.speedup for c in cells if c.suite == suite]
        if speedups:
            result[suite] = geomean(speedups)
    return result


def render_interp(cells: Sequence[InterpCell]) -> str:
    """The compiled-vs-tree report: per-program rows for the acceptance
    suite, then the per-suite geomean summary."""
    cm_cells = [c for c in cells if c.suite == ACCEPTANCE_SUITE]
    shown = cm_cells or list(cells)
    headers = ["Program", "amplify", "tree", "compiled", "speedup"]
    body = [[c.program, f"×{c.amplify}", fmt_ms(c.tree_s),
             fmt_ms(c.compiled_s), fmt_factor(c.speedup)] for c in shown]
    table = render_table(
        headers, body,
        title="Interpreter: compiled (slot frames) vs tree (dict ribs), "
              "monitored cm suite")
    lines = [table, ""]
    means = suite_geomeans(cells)
    for suite, mean in means.items():
        marker = "  <- acceptance" if suite == ACCEPTANCE_SUITE else ""
        lines.append(f"{suite:12s} geomean speedup {mean:.2f}x{marker}")
    cm = means.get(ACCEPTANCE_SUITE)
    if cm is not None:
        verdict = "PASS" if cm >= ACCEPTANCE_TARGET else "MISS"
        lines.append(
            f"\nacceptance: cm geomean {cm:.2f}x vs target "
            f"≥{ACCEPTANCE_TARGET:.0f}x -> {verdict}")
    return "\n".join(lines)


def interp_report(cells: Sequence[InterpCell], scale: str,
                  repeats: Optional[int] = None) -> dict:
    """The machine-readable report (``BENCH_interp.json``)."""
    if repeats is None and scale in _SCALES:
        repeats = _SCALES[scale][1]
    means = suite_geomeans(cells)
    cm = means.get(ACCEPTANCE_SUITE, 0.0)
    return {
        "schema": "bench-interp/v1",
        "scale": scale,
        "repeats": repeats,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "suites": {
            suite: {
                "mode": SUITES[suite][0],
                "strategy": SUITES[suite][1],
                "geomean_speedup": means.get(suite),
                "cells": [
                    {
                        "program": c.program,
                        "amplify": c.amplify,
                        "tree_s": c.tree_s,
                        "compiled_s": c.compiled_s,
                        "speedup": c.speedup,
                    }
                    for c in cells if c.suite == suite
                ],
            }
            for suite in SUITES if any(c.suite == suite for c in cells)
        },
        "acceptance": {
            "suite": ACCEPTANCE_SUITE,
            "geomean_speedup": cm,
            "target": ACCEPTANCE_TARGET,
            "pass": cm >= ACCEPTANCE_TARGET,
        },
    }


def write_interp_json(cells: Sequence[InterpCell], path: str,
                      scale: str, repeats: Optional[int] = None) -> None:
    with open(path, "w") as f:
        json.dump(interp_report(cells, scale, repeats), f, indent=2)
        f.write("\n")
