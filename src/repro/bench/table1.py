"""Regenerate Table 1.

For every corpus row we *measure* the Dyn. and Static columns with this
library and print them beside the paper's recorded verdicts for all five
systems (Liquid Haskell, Isabelle and ACL2 are offline literature values —
see DESIGN.md substitutions).
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.report import render_table
from repro.corpus import all_programs
from repro.corpus.registry import CorpusProgram
from repro.eval.machine import Answer, run_source
from repro.sct.monitor import SCMonitor
from repro.symbolic import verify_source
from repro.values.values import write_value


class Table1Row:
    def __init__(self, program: CorpusProgram, dyn_ok: bool, dyn_note: str,
                 static_ok: Optional[bool]):
        self.program = program
        self.dyn_ok = dyn_ok
        self.dyn_note = dyn_note
        self.static_ok = static_ok

    @property
    def matches_paper(self) -> bool:
        dyn_match = self.dyn_ok == self.program.paper_dyn.startswith("Y")
        paper_static = self.program.paper_static
        static_match = (
            paper_static == "" or
            (self.static_ok is not None
             and self.static_ok == paper_static.startswith("Y"))
        )
        return dyn_match and static_match


def run_table1(max_steps: int = 50_000_000,
               engine: str = "bitmask") -> List[Table1Row]:
    """``engine`` selects the monitor's graph representation (see
    :mod:`repro.sct.bitgraph`); the monitor raises on exactly the same
    call sequences under either engine (property-tested), so the knob
    exists to keep the bitmask/reference perf gap measurable on the full
    corpus (``python -m repro bench compose`` for the dedicated
    microbenchmarks)."""
    rows = []
    for prog in all_programs():
        monitor = SCMonitor(measures=prog.measures, engine=engine)
        answer = run_source(prog.source, mode="full", monitor=monitor,
                            max_steps=max_steps)
        dyn_ok = (answer.kind == Answer.VALUE
                  and write_value(answer.value) == prog.expected)
        dyn_note = "O" if prog.measures else ""
        static_ok: Optional[bool] = None
        if prog.entry is not None:
            verdict = verify_source(prog.source, prog.entry[0], prog.entry[1],
                                    result_kinds=prog.result_kinds)
            static_ok = verdict.verified
        rows.append(Table1Row(prog, dyn_ok, dyn_note, static_ok))
    return rows


def _mark(ok: Optional[bool], note: str = "") -> str:
    if ok is None:
        return "-"
    return ("Y" + note) if ok else "N"


def render_table1(rows: List[Table1Row]) -> str:
    headers = ["Program", "Dyn.", "Static", "| paper:", "Dyn.", "Static",
               "LH", "Isabelle", "ACL2", "match"]
    body = []
    for row in rows:
        p = row.program
        body.append([
            p.name,
            _mark(row.dyn_ok, row.dyn_note),
            _mark(row.static_ok),
            "|",
            p.paper[0], p.paper[1] or "-", p.paper[2] or "-",
            p.paper[3] or "-", p.paper[4] or "-",
            "yes" if row.matches_paper else "DEVIATES",
        ])
    matched = sum(1 for r in rows if r.matches_paper)
    table = render_table(headers, body,
                         title="Table 1: evaluation on terminating programs")
    return (f"{table}\n\n{matched}/{len(rows)} rows match the paper "
            "(deviations are discussed in EXPERIMENTS.md)")
