"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: List[Sequence[str]],
                 title: str = "") -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt(cells) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    for row in rows:
        lines.append(fmt(row))
    return "\n".join(lines)


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}ms"


def fmt_factor(x: float) -> str:
    return f"{x:.1f}x"
