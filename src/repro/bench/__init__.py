"""Benchmark harness: regenerates every table and figure of §5.

* :mod:`repro.bench.table1` — Table 1 (dynamic + static verdicts vs the
  recorded LH/Isabelle/ACL2 columns),
* :mod:`repro.bench.fig10` — Figure 10 (monitoring slowdown of factorial,
  sum, merge-sort, direct and interpreted; unchecked vs continuation-mark
  vs imperative),
* :mod:`repro.bench.divergence` — §5.1.2 (time/calls to catch divergence),
* :mod:`repro.bench.ablation` — the §5 implementation-choice knobs
  (keying, backoff, loop entries, order, strategy),
* :mod:`repro.bench.mc_ablation` — the §6.2 monotonicity-constraint
  extension (static precision vs SC, dynamic overhead),
* :mod:`repro.bench.compose_bench` — the bitmask graph engine vs the
  frozenset reference on compose-heavy workloads (the perf trajectory
  of this reproduction's own graph-algebra hot path),
* :mod:`repro.bench.interp` — the compiled machine (lexical addressing +
  slot frames + monitor fast path) vs the tree machine over the corpus
  (the perf trajectory of the evaluation hot loop; emits
  ``BENCH_interp.json``),
* :mod:`repro.bench.residual` — the discharge pipeline: statically
  verified corpus programs running monitor-free under a residual policy
  vs full monitoring vs the unmonitored floor (emits
  ``BENCH_residual.json``),
* :mod:`repro.bench.native` — the native tier: the fully-discharged
  corpus on all three machines under one residual policy, amplified by
  a discharged in-language driver loop (emits ``BENCH_native.json``).
"""

from repro.bench.compose_bench import run_compose, render_compose
from repro.bench.interp import (
    render_interp,
    run_interp,
    write_interp_json,
)
from repro.bench.native import (
    render_native,
    run_native,
    write_native_json,
)
from repro.bench.residual import (
    render_residual,
    run_residual,
    write_residual_json,
)
from repro.bench.table1 import run_table1, render_table1
from repro.bench.fig10 import run_fig10, render_fig10
from repro.bench.divergence import run_divergence, render_divergence
from repro.bench.ablation import run_ablation, render_ablation
from repro.bench.mc_ablation import (
    render_mc,
    run_mc_dynamic,
    run_mc_static,
)

__all__ = [
    "run_table1", "render_table1",
    "run_fig10", "render_fig10",
    "run_divergence", "render_divergence",
    "run_ablation", "render_ablation",
    "run_mc_static", "run_mc_dynamic", "render_mc",
    "run_compose", "render_compose",
    "run_interp", "render_interp", "write_interp_json",
    "run_residual", "render_residual", "write_residual_json",
    "run_native", "render_native", "write_native_json",
]
