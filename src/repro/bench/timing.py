"""Small timing utilities (perf_counter, best-of-N)."""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple

from repro.eval.machine import Answer, run_source
from repro.lang.parser import parse_program
from repro.eval.machine import run_program
from repro.sct.monitor import SCMonitor


def time_once(fn: Callable[[], object]) -> Tuple[float, object]:
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def best_of(fn: Callable[[], object], repeats: int = 3) -> Tuple[float, object]:
    """Minimum wall time over ``repeats`` runs (robust to scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        dt, result = time_once(fn)
        best = min(best, dt)
    return best, result


def time_program(source: str, *, mode: str, strategy: str = "cm",
                 monitor_factory: Optional[Callable[[], SCMonitor]] = None,
                 repeats: int = 3) -> Tuple[float, Answer]:
    """Parse once, then time the runs (parsing excluded, as the paper's
    timings exclude compilation)."""
    program = parse_program(source)

    def run() -> Answer:
        monitor = monitor_factory() if monitor_factory else SCMonitor()
        return run_program(program, mode=mode, strategy=strategy, monitor=monitor)

    return best_of(run, repeats)
