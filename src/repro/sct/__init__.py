"""Size-change termination machinery (the paper's core contribution).

* :mod:`repro.sct.graph` — size-change graphs, composition ``;``, ``desc?``,
  ``prog?`` (paper Fig. 4).
* :mod:`repro.sct.order` — well-founded partial orders on values (Fig. 5 and
  the default size order).
* :mod:`repro.sct.monitor` — the ``upd`` function as an incremental,
  policy-configurable monitor (keying, backoff, loop entries, measures).
* :mod:`repro.sct.errors` — size-change violations with blame and witnesses.
"""

from repro.sct.errors import SizeChangeViolation
from repro.sct.graph import SCGraph, arc, compose, graph_of_values, prog_ok
from repro.sct.monitor import Entry, SCMonitor
from repro.sct.order import ContainmentOrder, SizeOrder, DESC, EQ, NONE

__all__ = [
    "SizeChangeViolation",
    "SCGraph",
    "arc",
    "compose",
    "graph_of_values",
    "prog_ok",
    "Entry",
    "SCMonitor",
    "ContainmentOrder",
    "SizeOrder",
    "DESC",
    "EQ",
    "NONE",
]
