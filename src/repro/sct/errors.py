"""Size-change violations (``errorSC``) with blame and a witness."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


class SizeChangeViolation(Exception):
    """Raised by the monitor when the size-change property fails.

    Fields form the witness the user sees:

    * ``function`` — description of the recurring closure,
    * ``prev_args`` / ``new_args`` — the two argument vectors whose graph
      completed the violating composition,
    * ``graph`` — the newest size-change graph,
    * ``composition`` — the idempotent composed graph lacking a strict
      self-arc (the actual SCP counterexample),
    * ``blame`` — the party charged (the enclosing ``term/c`` label, §2.3),
    * ``call_count`` — how many calls to the function the extent had seen.
    """

    def __init__(
        self,
        function: str,
        prev_args: Tuple,
        new_args: Tuple,
        graph,
        composition,
        blame: Optional[str] = None,
        call_count: int = 0,
        param_names: Optional[Sequence[str]] = None,
    ):
        self.function = function
        self.prev_args = prev_args
        self.new_args = new_args
        self.graph = graph
        self.composition = composition
        self.blame = blame
        self.call_count = call_count
        self.param_names = list(param_names) if param_names else None
        # Rendering walks the argument values (write_value); under the
        # non-enforcing Fig. 6 semantics a violation is recorded per call,
        # so rendering eagerly here would make a diverging extent quadratic.
        # Render on demand instead.
        super().__init__()

    def __str__(self) -> str:
        return self._render()

    def _render(self) -> str:
        from repro.values.values import write_value

        def show(args: Tuple) -> str:
            return "(" + " ".join(write_value(a) for a in args) + ")"

        lines = [f"size-change violation in {self.function}"]
        if self.blame is not None:
            lines.append(f"  blaming: {self.blame}")
        lines.append(f"  previous arguments: {show(self.prev_args)}")
        lines.append(f"  new arguments:      {show(self.new_args)}")
        lines.append(f"  latest graph:       {self.graph.pretty(self.param_names)}")
        lines.append(
            "  violating composition (idempotent, no strict self-arc): "
            + self.composition.pretty(self.param_names)
        )
        lines.append(f"  after {self.call_count} monitored calls")
        return "\n".join(lines)
