"""The bitmask size-change graph engine.

:class:`repro.sct.graph.SCGraph` stores a graph as a frozenset of
``(i, r, j)`` tuples — the paper's notation, kept as the spec-conformance
reference.  On the hot paths (the monitor's per-call composition batch,
the static transitive closure) that representation pays a Python-object
toll per arc: tuple allocation, per-arc hashing, dict-backed set joins.

This module packs a graph of arity ``m`` into **two machine integers**:

* ``strict`` — bit ``i*m + j`` is set when the graph carries ``i ↓ j``,
* ``weak`` — bit ``i*m + j`` is set when it carries ``i ↓= j`` and no
  strict arc shadows it (the two masks are disjoint, mirroring
  ``SCGraph``'s arc semantics).

Composition ``g0 ; g1`` walks the ``m`` middle positions once.  For a
middle position ``j``, the sources reaching ``j`` form *column* ``j`` of
``g0`` and the targets leaving ``j`` form *row* ``j`` of ``g1``; their
outer product is a single big-int multiply:

    column ``j`` extracted to stride-``m`` positions:  ``(g0 >> j) & COL0``
    row ``j`` extracted to the low ``m`` bits:          ``(g1 >> j*m) & ROW0``
    outer product:                                      ``col * row``

because ``col`` only has bits at multiples of ``m`` and ``row`` fits in
``m`` bits, the partial products never carry.  A strict result arc needs a
strict leg on either side, so per middle position the strict contribution
is ``col_strict*row_any | col_any*row_strict``; weak-only arcs are what
remains.  ``desc?`` is then an idempotence check (one composition) plus a
single AND against the diagonal mask.

Everything here is *functional*: a packed graph is a plain ``(strict,
weak)`` int pair, composition sets are sets of int pairs, and the
per-arity mask tables (:func:`masks`) are interned so callers resolve
them once per batch.  :func:`unpack` converts back to :class:`SCGraph`
for everything user-facing (violations, traces, witnesses) — the packed
form never leaks into reported results.

Property tests (``tests/test_bitgraph.py``) assert agreement with the
reference ``SCGraph`` on ``compose`` / ``desc_ok`` / ``prog_ok`` for
random graphs up to arity 8.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.sct.graph import SCGraph, STRICT, WEAK

Packed = Tuple[int, int]


class BitMasks:
    """Interned per-arity mask table.

    * ``row0`` — the low-``m`` bits (row 0; row ``j`` is ``row0 << j*m``),
    * ``col0`` — one bit every ``m`` positions (column 0; column ``j`` is
      ``col0 << j``),
    * ``diag`` — bits ``i*m + i``, the self-arc positions.
    """

    __slots__ = ("m", "row0", "col0", "diag")

    def __init__(self, m: int):
        self.m = m
        self.row0 = (1 << m) - 1
        col0 = 0
        diag = 0
        for i in range(m):
            col0 |= 1 << (i * m)
            diag |= 1 << (i * m + i)
        self.col0 = col0
        self.diag = diag


_TABLES: Dict[int, BitMasks] = {}


def masks(m: int) -> BitMasks:
    """The interned mask table for arity ``m``."""
    table = _TABLES.get(m)
    if table is None:
        table = _TABLES[m] = BitMasks(m)
    return table


# -- conversion ----------------------------------------------------------------


def pack(g: SCGraph, m: int) -> Packed:
    """Pack a reference graph whose arc indices are all ``< m``.

    Packing *normalizes*: a weak arc coincident with a strict arc is
    dropped, matching what ``SCGraph.compose`` emits.  Every graph the
    monitor or the static closure iterates is already normalized
    (``graph_of_values`` emits one arc per position pair and ``compose``
    filters shadowed weak arcs); only hand-built denormalized frozensets
    can distinguish the representations, and there the difference is
    syntactic — reference equality sees two arcs where the packed form
    sees one — never a difference in entailed size relations.
    """
    strict = 0
    weak = 0
    for (i, r, j) in g.arcs:
        if i >= m or j >= m:
            raise ValueError(f"arc ({i}, {j}) does not fit arity {m}")
        bit = 1 << (i * m + j)
        if r is STRICT:
            strict |= bit
        else:
            weak |= bit
    return strict, weak & ~strict


def unpack(mk: BitMasks, strict: int, weak: int) -> SCGraph:
    """Expand a packed graph back into the reference representation."""
    m = mk.m
    arcs = []
    for i in range(m):
        row_s = (strict >> (i * m)) & mk.row0
        row_w = (weak >> (i * m)) & mk.row0
        for j in range(m):
            bit = 1 << j
            if row_s & bit:
                arcs.append((i, STRICT, j))
            elif row_w & bit:
                arcs.append((i, WEAK, j))
    return SCGraph(arcs)


def required_arity(g: SCGraph) -> int:
    """The smallest ``m`` that can hold ``g``."""
    m = 1
    for (i, _r, j) in g.arcs:
        if i >= m:
            m = i + 1
        if j >= m:
            m = j + 1
    return m


def widen(packed: Packed, m_old: int, m_new: int) -> Packed:
    """Re-encode a packed graph at a larger arity (row stride changes)."""
    if m_new < m_old:
        raise ValueError("widen cannot shrink a graph")
    if m_new == m_old:
        return packed
    row0 = (1 << m_old) - 1
    strict, weak = packed
    ws = 0
    ww = 0
    for i in range(m_old):
        ws |= ((strict >> (i * m_old)) & row0) << (i * m_new)
        ww |= ((weak >> (i * m_old)) & row0) << (i * m_new)
    return ws, ww


# -- the paper's operations, packed --------------------------------------------


def compose(mk: BitMasks, s0: int, w0: int, s1: int, w1: int) -> Packed:
    """Sequential composition (Fig. 4's ``;``) on packed graphs."""
    m = mk.m
    row0 = mk.row0
    col0 = mk.col0
    a0 = s0 | w0
    a1 = s1 | w1
    strict = 0
    every = 0
    for j in range(m):
        col_any = (a0 >> j) & col0
        if not col_any:
            continue
        row_any = (a1 >> (j * m)) & row0
        if not row_any:
            continue
        every |= col_any * row_any
        col_s = (s0 >> j) & col0
        if col_s:
            strict |= col_s * row_any
        row_s = (s1 >> (j * m)) & row0
        if row_s:
            strict |= col_any * row_s
    return strict, every & ~strict


def left_factor(mk: BitMasks, s0: int, w0: int):
    """Precompute the column masks of a left operand: ``(cols_any,
    cols_strict)``, column ``j`` spread to stride-``m`` positions.  One
    factoring amortizes the extraction over every ``g0 ; H`` sharing the
    same ``g0`` (the worklist composing a popped graph rightward, the
    monitor batching one new evidence graph against its whole set)."""
    m = mk.m
    col0 = mk.col0
    a0 = s0 | w0
    cols_any = [(a0 >> j) & col0 for j in range(m)]
    cols_strict = [(s0 >> j) & col0 for j in range(m)]
    return cols_any, cols_strict


def compose_left(mk: BitMasks, left, s1: int, w1: int) -> Packed:
    """``g0 ; g1`` with ``g0`` pre-factored by :func:`left_factor`."""
    m = mk.m
    row0 = mk.row0
    cols_any, cols_strict = left
    a1 = s1 | w1
    strict = 0
    every = 0
    for j in range(m):
        col_any = cols_any[j]
        if not col_any:
            continue
        row_any = (a1 >> (j * m)) & row0
        if not row_any:
            continue
        every |= col_any * row_any
        col_s = cols_strict[j]
        if col_s:
            strict |= col_s * row_any
        row_s = (s1 >> (j * m)) & row0
        if row_s:
            strict |= col_any * row_s
    return strict, every & ~strict


def right_factor(mk: BitMasks, s1: int, w1: int):
    """Precompute the row masks of a right operand: ``(rows_any,
    rows_strict)``, row ``j`` in the low ``m`` bits.  The dual of
    :func:`left_factor` for ``E ; g1`` with ``g1`` fixed."""
    m = mk.m
    row0 = mk.row0
    a1 = s1 | w1
    rows_any = [(a1 >> (j * m)) & row0 for j in range(m)]
    rows_strict = [(s1 >> (j * m)) & row0 for j in range(m)]
    return rows_any, rows_strict


def compose_right(mk: BitMasks, s0: int, w0: int, right) -> Packed:
    """``g0 ; g1`` with ``g1`` pre-factored by :func:`right_factor`."""
    m = mk.m
    col0 = mk.col0
    rows_any, rows_strict = right
    a0 = s0 | w0
    strict = 0
    every = 0
    for j in range(m):
        row_any = rows_any[j]
        if not row_any:
            continue
        col_any = (a0 >> j) & col0
        if not col_any:
            continue
        every |= col_any * row_any
        col_s = (s0 >> j) & col0
        if col_s:
            strict |= col_s * row_any
        row_s = rows_strict[j]
        if row_s:
            strict |= col_any * row_s
    return strict, every & ~strict


def is_idempotent(mk: BitMasks, strict: int, weak: int) -> bool:
    return compose(mk, strict, weak, strict, weak) == (strict, weak)


def has_strict_self_arc(mk: BitMasks, strict: int) -> bool:
    return bool(strict & mk.diag)


def desc_ok(mk: BitMasks, strict: int, weak: int) -> bool:
    """``desc?`` (Fig. 4): an idempotent graph must carry a strict
    self-arc; non-idempotent graphs pass."""
    if not is_idempotent(mk, strict, weak):
        return True
    return bool(strict & mk.diag)


def prog_ok(mk: BitMasks, packed_newest_first: Sequence[Packed]) -> bool:
    """Packed twin of :func:`repro.sct.graph.prog_ok` (quadratic reference
    over every contiguous composition, used by the conformance tests)."""
    chron = list(reversed(packed_newest_first))
    n = len(chron)
    for i in range(n):
        s, w = chron[i]
        if not desc_ok(mk, s, w):
            return False
        for j in range(i + 1, n):
            s, w = compose(mk, s, w, *chron[j])
            if not desc_ok(mk, s, w):
                return False
    return True


def graph_of_values(old_args: Sequence, new_args: Sequence, order,
                    mk: BitMasks) -> Packed:
    """Packed twin of :func:`repro.sct.graph.graph_of_values`: compare the
    argument vectors pairwise under ``order`` straight into the masks."""
    from repro.sct.order import DESC, EQ

    m = mk.m
    strict = 0
    weak = 0
    compare = order.compare
    for i, vi in enumerate(old_args):
        base = i * m
        for j, vj in enumerate(new_args):
            c = compare(vi, vj)
            if c == DESC:
                strict |= 1 << (base + j)
            elif c == EQ:
                weak |= 1 << (base + j)
    return strict, weak
