"""The Figure 1 call-tree tracer.

§2.1 illustrates dynamic size-change monitoring with the complete tree of
calls and generated graphs for ``(ack 2 0)``.  This module regenerates
such trees for any program: run under the *imperative* strategy with an
event-collecting monitor, then assemble the ``("call", …)`` /
``("return",)`` stream into a tree whose edges carry the size-change
graph computed at each call.

    >>> tree = trace_source(ACK_SOURCE)
    >>> print(render_tree(tree))
    (ack 2 0)
    ├─ {(m ↓ m), (m ↓ n)} → (ack 1 1)
    │  ├─ ...

The roots are the outermost monitored calls (for ``(ack 2 0)`` there is
exactly one).  Edge labels are ``None`` for a function's first call in an
extent (no previous arguments to compare against — the table's trivial
entry) and for calls skipped by backoff.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.eval.machine import Answer, run_source
from repro.sct.monitor import SCMonitor
from repro.values.values import write_value


class CallNode:
    """One monitored call: the callee, its (measured) arguments, the graph
    recorded on the way in (``None`` for trivial entries), and the
    monitored calls made in its dynamic extent."""

    __slots__ = ("function", "args", "graph", "params", "children")

    def __init__(self, function: str, args: tuple, graph, params=None):
        self.function = function
        self.args = args
        self.graph = graph
        self.params = params
        self.children: List["CallNode"] = []

    def label(self) -> str:
        shown = " ".join(write_value(a) for a in self.args)
        return f"({self.function} {shown})" if shown else f"({self.function})"

    def count(self) -> int:
        return 1 + sum(c.count() for c in self.children)

    def __repr__(self) -> str:
        return f"CallNode{self.label()}"


def assemble_tree(events: Sequence[tuple]) -> List[CallNode]:
    """Fold a monitor event stream into a forest of call trees."""
    roots: List[CallNode] = []
    stack: List[CallNode] = []
    for event in events:
        if event[0] == "call":
            _, function, args, graph, params = event
            node = CallNode(function, args, graph, params)
            if stack:
                stack[-1].children.append(node)
            else:
                roots.append(node)
            stack.append(node)
        elif event[0] == "return":
            if stack:
                stack.pop()
    return roots


class TraceResult:
    """The answer of the traced run plus the assembled call forest."""

    def __init__(self, answer: Answer, roots: List[CallNode],
                 monitor: SCMonitor):
        self.answer = answer
        self.roots = roots
        self.monitor = monitor

    def total_calls(self) -> int:
        return sum(r.count() for r in self.roots)


def trace_source(
    text: str,
    *,
    monitor: Optional[SCMonitor] = None,
    mode: str = "full",
    max_steps: Optional[int] = None,
    fuel: Optional[int] = None,
    max_events: Optional[int] = None,
    machine: str = "compiled",
) -> TraceResult:
    """Run ``text`` under the imperative strategy (the one with explicit
    restore frames, hence call/return pairing) collecting the call forest.

    Pass a monitor to trace with custom policy (measures, an
    :class:`repro.mc.monitor.MCMonitor`, ``enforce=False`` to keep going
    past violations, ...).  The monitor's ``events`` list is overwritten.
    An event-collecting monitor disqualifies the machine's inline-``upd``
    fast path, so both machines emit the identical event stream.
    """
    events: List[tuple] = []
    if monitor is None:
        monitor = SCMonitor()
    monitor.events = events
    answer = run_source(text, mode=mode, strategy="imperative",
                        monitor=monitor, max_steps=max_steps, fuel=fuel,
                        machine=machine)
    if max_events is not None:
        events = events[:max_events]
    return TraceResult(answer, assemble_tree(events), monitor)


def render_tree(roots: List[CallNode], *,
                max_depth: Optional[int] = None,
                max_nodes: int = 500) -> str:
    """ASCII-render a call forest in the style of Figure 1: each line shows
    the size-change graph recorded on the way into the call (when one was
    built) and the call itself."""
    lines: List[str] = []
    budget = [max_nodes]

    def walk(node: CallNode, prefix: str, child_prefix: str, depth: int):
        if budget[0] <= 0:
            return
        budget[0] -= 1
        graph_label = ("" if node.graph is None
                       else node.graph.pretty(node.params) + " → ")
        lines.append(prefix + graph_label + node.label())
        if max_depth is not None and depth >= max_depth and node.children:
            lines.append(child_prefix + "…")
            return
        n = len(node.children)
        for i, child in enumerate(node.children):
            last = i == n - 1
            walk(child,
                 child_prefix + ("└─ " if last else "├─ "),
                 child_prefix + ("   " if last else "│  "),
                 depth + 1)

    for i, root in enumerate(roots):
        walk(root, "", "", 0)
        if i != len(roots) - 1:
            lines.append("")
    return "\n".join(lines)
