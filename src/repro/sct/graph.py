"""Size-change graphs (paper Fig. 4).

A size-change graph ``g ∈ 𝒫(ℕ × r × ℕ)`` is a set of arcs ``(i, r, j)``
relating the ``i``-th argument of one call to the ``j``-th argument of a
later call to the same function.  ``r`` is either strict descent ``↓``
(``STRICT``) or non-ascent ``↓=`` (``WEAK``).

This module implements, directly from the figure:

* ``graph`` — build a graph from two argument vectors under a partial order,
* ``;`` (:func:`compose`) — sequential composition, keeping the weak arc
  only when no strict path exists,
* ``desc?`` (:meth:`SCGraph.desc_ok`) — idempotent graphs must carry a
  strict self-arc,
* ``prog?`` (:func:`prog_ok`) — every contiguous composition satisfies
  ``desc?`` (the monitor uses the incremental form in
  :mod:`repro.sct.monitor`; this quadratic reference version is kept for
  spec-conformance tests).

This frozenset-of-tuples class is the **spec-conformance reference**: it
transcribes Fig. 4 and is what every user-facing surface (violations,
traces, witnesses) speaks.  The hot paths run the packed twin in
:mod:`repro.sct.bitgraph` — two machine integers per graph — which the
property tests in ``tests/test_bitgraph.py`` hold to agreement with this
class on ``compose`` / ``desc_ok`` / ``prog_ok``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

STRICT = True
WEAK = False

Arc = Tuple[int, bool, int]


def arc(i: int, r: str, j: int) -> Arc:
    """Readable arc constructor: ``arc(0, '<', 1)`` or ``arc(0, '=', 1)``."""
    if r == "<":
        return (i, STRICT, j)
    if r == "=":
        return (i, WEAK, j)
    raise ValueError(f"arc relation must be '<' or '=', got {r!r}")


class SCGraph:
    """An immutable size-change graph (a frozenset of arcs)."""

    __slots__ = ("arcs", "_hash")

    def __init__(self, arcs: Iterable[Arc] = ()):
        self.arcs: FrozenSet[Arc] = frozenset(arcs)
        self._hash = hash(self.arcs)

    # -- structure -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SCGraph) and other.arcs == self.arcs

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self.arcs)

    def __iter__(self):
        return iter(self.arcs)

    # -- the paper's operations ----------------------------------------------

    def compose(self, later: "SCGraph") -> "SCGraph":
        """Sequential composition ``self ; later`` (Fig. 4).

        An arc ``i → k`` is strict when some path ``i r j`` / ``j r k`` has a
        strict leg; it is weak only when *every* connecting path is weak.
        """
        by_src = {}
        for (j, r1, k) in later.arcs:
            by_src.setdefault(j, []).append((r1, k))
        strict = set()
        weak = set()
        for (i, r0, j) in self.arcs:
            for (r1, k) in by_src.get(j, ()):
                if r0 is STRICT or r1 is STRICT:
                    strict.add((i, k))
                else:
                    weak.add((i, k))
        arcs = [(i, STRICT, k) for (i, k) in strict]
        arcs += [(i, WEAK, k) for (i, k) in weak if (i, k) not in strict]
        return SCGraph(arcs)

    def is_idempotent(self) -> bool:
        return self.compose(self) == self

    def has_strict_self_arc(self) -> bool:
        return any(r is STRICT and i == j for (i, r, j) in self.arcs)

    def desc_ok(self) -> bool:
        """``desc?`` (Fig. 4): idempotent graphs must have a strict
        self-arc.  Non-idempotent graphs are unconstrained (they cannot be
        iterated verbatim)."""
        if not self.is_idempotent():
            return True
        return self.has_strict_self_arc()

    # -- display ---------------------------------------------------------------

    def pretty(self, names: Optional[Sequence[str]] = None) -> str:
        def nm(i: int) -> str:
            if names is not None and i < len(names):
                return names[i]
            return f"x{i}"

        shown = sorted(self.arcs, key=lambda a: (a[0], a[2], not a[1]))
        inner = ", ".join(
            f"{nm(i)} {'↓' if r is STRICT else '↓='} {nm(j)}" for (i, r, j) in shown
        )
        return "{" + inner + "}"

    def __repr__(self) -> str:
        return f"SCGraph{self.pretty()}"


EMPTY_GRAPH = SCGraph()


def compose(g0: SCGraph, g1: SCGraph) -> SCGraph:
    return g0.compose(g1)


def compose_run(graphs: Sequence[SCGraph]) -> SCGraph:
    """Fold ``g_1 ; g_2 ; … ; g_n`` left to right (time order)."""
    if not graphs:
        raise ValueError("cannot compose an empty run")
    acc = graphs[0]
    for g in graphs[1:]:
        acc = acc.compose(g)
    return acc


def prog_ok(graphs_newest_first: Sequence[SCGraph]) -> bool:
    """The paper's ``prog?``: for the sequence ``g_n :: … :: g_1`` (newest
    first, as the table stores it), every contiguous composition
    ``g_i ; … ; g_j`` (time order) must satisfy ``desc?``.

    Quadratic reference implementation; the monitor maintains the same
    information incrementally (one new-arc batch per call).
    """
    chron = list(reversed(graphs_newest_first))
    n = len(chron)
    for i in range(n):
        acc = chron[i]
        if not acc.desc_ok():
            return False
        for j in range(i + 1, n):
            acc = acc.compose(chron[j])
            if not acc.desc_ok():
                return False
    return True


def graph_of_values(old_args: Sequence, new_args: Sequence, order) -> SCGraph:
    """The paper's ``graph`` function: compare argument vectors pairwise
    under ``order`` (:mod:`repro.sct.order`), producing strict arcs for
    observed descent and weak arcs for equality."""
    from repro.sct.order import DESC, EQ

    arcs = []
    for i, vi in enumerate(old_args):
        for j, vj in enumerate(new_args):
            c = order.compare(vi, vj)
            if c == DESC:
                arcs.append((i, STRICT, j))
            elif c == EQ:
                arcs.append((i, WEAK, j))
    return SCGraph(arcs)
