"""The run-time size-change monitor: the paper's ``upd`` (Fig. 4) as a
configurable policy object.

The size-change table maps each function to its most recent arguments and
the evidence accumulated for it *in the current dynamic extent*.  Where the
paper stores the whole graph sequence ``g_n :: … :: g_1`` and re-runs the
quadratic ``prog?`` on every call, the monitor keeps, per entry, the set of
all contiguous compositions *ending at the latest checked call*:

    S_n = { g_i ; … ; g_n | i ≤ n }   (deduplicated)

Appending ``g_{n+1}`` gives ``S_{n+1} = {c ; g_{n+1} | c ∈ S_n} ∪
{g_{n+1}}``; compositions ending earlier were checked when they were
created, so checking ``desc?`` on the new batch alone is equivalent to the
paper's ``prog?`` over the whole sequence.  ``S`` stabilizes at a handful of
graphs for typical loops, making monitoring O(1) amortized per call.

Policy knobs (§5 of the paper, plus the engine selector):

* ``keying`` — ``'identity'`` (exact, per-closure-object; sound by
  Lemma A.1) or ``'label'`` (one entry per syntactic λ + environment hash,
  reproducing the paper's closure-hashing and its possible false positives),
* ``backoff`` — exponential backoff: build/check graphs only on calls
  1, 2, 4, 8, …; sound because sampling an infinite call sequence yields an
  infinite sequence whose SCP violation is still inevitable,
* ``loop_entries`` — when given a set of λ labels (e.g. from the 0-CFA
  cycle analysis in :mod:`repro.analysis.callgraph`), only those closures
  are monitored,
* ``whitelist`` — function names known to terminate (e.g. statically
  verified ones) that need no instrumentation,
* ``skip_labels`` — λ labels a static discharge certificate proved
  terminating (:mod:`repro.analysis.discharge`): closures with those
  labels are not monitored.  This is the residual-enforcement hook for
  the non-compiled path — the compiled machine additionally honors the
  equivalent per-λ ``discharged`` mark without calling into the monitor,
* ``measures`` — per-function-name argument-tuple measures implementing
  custom well-founded orders (``lh-range``, ``acl2-fig-2``),
* ``engine`` — ``'bitmask'`` (default) keeps each entry's composition set
  ``S`` as packed ``(strict, weak)`` int pairs and runs ``;`` / ``desc?``
  through :mod:`repro.sct.bitgraph`; ``'reference'`` keeps the frozenset
  :class:`~repro.sct.graph.SCGraph` objects of the paper's figures.  Both
  engines raise on exactly the same call sequences (property-tested), and
  every graph that escapes the monitor — violations, traces, the Fig. 1
  event stream — is always a reference ``SCGraph``.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.ds.hamt import Hamt, IdKey
from repro.sct import bitgraph
from repro.sct.errors import SizeChangeViolation
from repro.sct.graph import SCGraph, graph_of_values
from repro.sct.order import DEFAULT_ORDER, SizeOrder
from repro.values.equality import scheme_equal, value_hash
from repro.values.values import Closure, Pair, size_of

_MISSING = object()

# Fast-path memo tables, shared across monitors: packed graphs recur from a
# small per-program repertoire even when a composition set never stabilizes
# (permuted-argument loops à la tak), so composition and desc? become dict
# hits after warm-up.  Keys are single ints — the operand masks (each
# < 2^(m·m)) concatenated with the arity — so probes allocate no tuples.
# Cleared wholesale past _CACHE_CAP entries, so a long-lived process cannot
# accumulate (the compose cache is keyed by graph pairs, quadratic in the
# distinct graphs seen across all runs); one run's working set is far
# below the cap, making eviction a non-event in practice.
_COMPOSE_CACHE: Dict[int, Tuple[int, int]] = {}
_DESC_CACHE: Dict[int, bool] = {}
_CACHE_CAP = 1 << 16


class Entry:
    """One size-change table entry: ``(v⃗, S, count, next_check)``.

    Under the bitmask engine ``comps`` holds packed ``(strict, weak)``
    int pairs encoded at arity ``m``; under the reference engine it holds
    :class:`~repro.sct.graph.SCGraph` objects and ``m`` stays 0.

    ``sizes`` memoizes ``size_of`` over ``check_args`` for the compiled
    machine's fast path (:meth:`SCMonitor.advance_fast`): the default
    :class:`~repro.sct.order.SizeOrder` compares only sizes, so caching
    them turns the m×m evidence-graph build into integer compares.  It is
    ``None`` until a fast-path check computes it (the generic paths never
    read it).
    """

    __slots__ = ("check_args", "comps", "count", "next_check", "m", "sizes")

    def __init__(
        self,
        check_args: Tuple,
        comps: FrozenSet,
        count: int,
        next_check: int,
        m: int = 0,
        sizes: Optional[Tuple] = None,
    ):
        self.check_args = check_args
        self.comps = comps
        self.count = count
        self.next_check = next_check
        self.m = m
        self.sizes = sizes

    def __repr__(self) -> str:
        return f"Entry(count={self.count}, |S|={len(self.comps)})"


class SCMonitor:
    """Policy + ``upd`` implementation shared by both table strategies."""

    def __init__(
        self,
        order=None,
        keying: str = "identity",
        backoff: bool = False,
        whitelist: Iterable[str] = (),
        loop_entries: Optional[Set[int]] = None,
        skip_labels: Optional[FrozenSet[int]] = None,
        measures: Optional[Dict[str, Callable[[Tuple], Tuple]]] = None,
        trace: Optional[list] = None,
        enforce: bool = True,
        events: Optional[list] = None,
        engine: str = "bitmask",
    ):
        if keying not in ("identity", "label"):
            raise ValueError(f"unknown keying mode: {keying!r}")
        if engine not in ("bitmask", "reference"):
            raise ValueError(f"unknown graph engine: {engine!r}")
        self.order = order if order is not None else DEFAULT_ORDER
        self.keying = keying
        self.engine = engine
        # The packed fast path applies only to size-change evidence: a
        # subclass overriding ``make_graph`` (e.g. MCMonitor) supplies its
        # own graph family and takes the generic path.
        self._bitmask_fast = (
            engine == "bitmask"
            and type(self).make_graph is SCMonitor.make_graph
        )
        self.backoff = backoff
        self.whitelist = frozenset(whitelist)
        self.loop_entries = loop_entries
        # Residual enforcement: statically discharged λ labels.  None and
        # the empty set are equivalent (monitor everything); run_program
        # installs the run's policy here so the tree machine and any
        # direct `upd` driver honor it through `should_monitor`.
        self.skip_labels = frozenset(skip_labels) if skip_labels else None
        self.measures = dict(measures) if measures else {}
        # Optional event log: (function, prev_args, new_args, graph) per check.
        self.trace = trace
        # Optional call/return event stream for the Fig. 1 call-tree tracer
        # (repro.sct.trace): ("call", describe, args, graph|None) at each
        # monitored call, ("return",) at each restore.  Only the imperative
        # strategy emits returns (cm has no restore frames by design).
        self.events = events
        # ``enforce=False`` gives the paper's Fig. 6 call-sequence
        # semantics: tables extend (``ext``) but nothing guards the SCP;
        # violations are recorded in ``self.violations`` instead of raised.
        self.enforce = enforce
        self.violations: list = []
        # Statistics: how many calls were monitored / checked / skipped.
        self.calls_seen = 0
        self.checks_done = 0

    # -- policy ---------------------------------------------------------------

    def should_monitor(self, clo: Closure) -> bool:
        if self.skip_labels is not None and clo.lam.label in self.skip_labels:
            return False
        if self.loop_entries is not None and clo.lam.label not in self.loop_entries:
            return False
        if clo.name is not None and clo.name in self.whitelist:
            return False
        return True

    def key_for(self, clo: Closure):
        """Hashable table key for ``clo`` under the keying policy."""
        if self.keying == "identity":
            return IdKey(clo)
        # 'label': structural closure hash — λ label plus a hash of the
        # closure's immediate captured rib, approximating the paper's
        # closure hashing.  Tree closures hash their dict rib; compiled
        # closures hash the same name×value pairs through the frame and
        # the ``env_names`` tuple the resolver stamped on the λ, so the
        # two machines alias closures identically.  (One corner differs:
        # closures created at top level capture the whole global frame
        # under the tree machine but no frame at all when compiled, so
        # the tree hash tracks global content there and the compiled hash
        # is constant — distinguishable only when the same top-level λ
        # re-evaluates under changed globals.)
        env = clo.env
        rib = getattr(env, "bindings", None)
        if rib is not None and type(rib) is dict:
            code = 0
            for name, value in rib.items():
                code ^= (hash(name) * 31 + value_hash(value)) & 0x7FFFFFFF
            return ("label", clo.lam.label, code)
        if type(env) is list:
            code = 0
            i = 1
            for name in getattr(clo.lam, "env_names", ()):
                code ^= (hash(name) * 31 + value_hash(env[i])) & 0x7FFFFFFF
                i += 1
            return ("label", clo.lam.label, code)
        return ("label", clo.lam.label, 0)

    # -- the paper's `upd` ------------------------------------------------------

    def measured(self, clo: Closure, args: Tuple) -> Tuple:
        measure = self.measures.get(clo.name) if clo.name else None
        if measure is None:
            return args
        result = measure(args)
        return tuple(result)

    def initial_entry(self, clo: Closure, args: Tuple) -> Entry:
        return Entry(self.measured(clo, args), frozenset(), 1, 2)

    def make_graph(self, old_args: Tuple, new_args: Tuple):
        """Build the evidence graph for one observed transition.  The base
        monitor builds a size-change graph; :class:`repro.mc.monitor.
        MCMonitor` overrides this with a monotonicity-constraint graph.
        Any return type works as long as it has ``compose`` and
        ``desc_ok``."""
        return graph_of_values(old_args, new_args, self.order)

    def advance(self, entry: Entry, clo: Closure, args: Tuple, blame) -> Entry:
        """Extend ``entry`` with a new call; raise on an SCP violation."""
        count = entry.count + 1
        if count < entry.next_check:
            if self.events is not None:
                self.events.append(
                    ("call", clo.describe(), self.measured(clo, args), None,
                     [p.name for p in clo.params])
                )
            return Entry(entry.check_args, entry.comps, count,
                         entry.next_check, entry.m, entry.sizes)
        self.checks_done += 1
        margs = self.measured(clo, args)
        if self._bitmask_fast:
            return self._advance_bitmask(entry, clo, margs, count, blame)
        g = self.make_graph(entry.check_args, margs)
        if self.trace is not None:
            self.trace.append((clo.describe(), entry.check_args, margs, g))
        if self.events is not None:
            self.events.append(("call", clo.describe(), margs, g,
                                [p.name for p in clo.params]))
        new_comps = {g}
        for c in entry.comps:
            new_comps.add(c.compose(g))
        for c in new_comps:
            if not c.desc_ok():
                self._flag_violation(clo, entry.check_args, margs, g, c,
                                     count, blame)
                break
        return Entry(margs, frozenset(new_comps), count,
                     self._next_check(count))

    def _next_check(self, count: int) -> int:
        return count * 2 if self.backoff else count + 1

    def _flag_violation(self, clo: Closure, prev_args: Tuple, margs: Tuple,
                        graph, composition, count: int, blame) -> None:
        """Build the witness-carrying violation and raise it (or record
        it under the Fig. 6 ``enforce=False`` call-sequence semantics).
        Shared by both engines — ``graph`` / ``composition`` arrive as
        whatever user-facing graph family the caller monitors."""
        violation = SizeChangeViolation(
            function=clo.describe(),
            prev_args=prev_args,
            new_args=margs,
            graph=graph,
            composition=composition,
            blame=blame,
            call_count=count,
            param_names=[p.name for p in clo.params],
        )
        if self.enforce:
            raise violation
        self.violations.append(violation)

    def _advance_bitmask(self, entry: Entry, clo: Closure, margs: Tuple,
                         count: int, blame) -> Entry:
        """The packed twin of the tail of :meth:`advance`: evidence graphs
        and the composition set live as ``(strict, weak)`` int pairs; the
        reference :class:`SCGraph` is materialized only for whatever leaves
        the monitor (violations, traces, events)."""
        m = max(len(entry.check_args), len(margs), entry.m, 1)
        mk = bitgraph.masks(m)
        g = bitgraph.graph_of_values(entry.check_args, margs, self.order, mk)
        comps = entry.comps
        if entry.m and entry.m != m:
            comps = [bitgraph.widen(c, entry.m, m) for c in comps]
        if self.trace is not None:
            self.trace.append((clo.describe(), entry.check_args, margs,
                               bitgraph.unpack(mk, *g)))
        if self.events is not None:
            self.events.append(("call", clo.describe(), margs,
                                bitgraph.unpack(mk, *g),
                                [p.name for p in clo.params]))
        new_comps = {g}
        if comps:
            # g is the fixed right operand of the whole batch: factor its
            # row masks once (precomputed column/row composition).
            right = bitgraph.right_factor(mk, *g)
            compose_right = bitgraph.compose_right
            for (cs, cw) in comps:
                new_comps.add(compose_right(mk, cs, cw, right))
        for c in new_comps:
            if not bitgraph.desc_ok(mk, *c):
                self._flag_violation(clo, entry.check_args, margs,
                                     bitgraph.unpack(mk, *g),
                                     bitgraph.unpack(mk, *c), count, blame)
                break
        return Entry(margs, frozenset(new_comps), count,
                     self._next_check(count), m)

    # -- the compiled machine's fast path -----------------------------------------

    def inline_upd_ok(self) -> bool:
        """True when the compiled machine may replicate ``upd``/``upd_mut``
        inline with a per-closure cached :class:`IdKey`: identity keying
        with the base key, no event stream (``upd`` emits the initial-call
        event, which the inline path skips), and unoverridden table ops.
        :class:`repro.mc.monitor.MCMonitor` qualifies — it only overrides
        ``make_graph`` — so it inherits the whole call-site fast path."""
        cls = type(self)
        return (
            self.keying == "identity"
            and self.events is None
            and cls.key_for is SCMonitor.key_for
            and cls.upd is SCMonitor.upd
            and cls.upd_mut is SCMonitor.upd_mut
            and cls.initial_entry is SCMonitor.initial_entry
        )

    def trivial_policy(self, ignore_skip_labels: bool = False) -> bool:
        """True when ``should_monitor`` is constant-true (no whitelist, no
        loop-entry set, base method), so callers may skip the call.

        ``ignore_skip_labels`` is for the compiled machine, which tests
        the residual skip set inline (``clam.discharged`` /
        ``label in skips``) before this policy check ever runs; every
        other caller must leave it False so a skip set disables the
        shortcut."""
        return (
            (ignore_skip_labels or self.skip_labels is None)
            and self.loop_entries is None
            and not self.whitelist
            and type(self).should_monitor is SCMonitor.should_monitor
        )

    def fast_advance_ok(self) -> bool:
        """True when :meth:`advance_fast` is an exact stand-in for
        :meth:`advance`: packed size-change evidence under the stock
        :class:`~repro.sct.order.SizeOrder`, no trace or event capture,
        and no subclass overriding the evidence pipeline.  (Measures are
        fine — :meth:`advance_fast` applies them like the generic path.)"""
        cls = type(self)
        return (
            self._bitmask_fast
            and cls.advance is SCMonitor.advance
            and cls.measured is SCMonitor.measured
            and type(self.order) is SizeOrder
            and self.trace is None
            and self.events is None
        )

    def advance_fast(self, entry: Entry, clo: Closure, args: Tuple,
                     blame) -> Entry:
        """:meth:`advance` specialized for the compiled machine's hot loop
        (guarded by :meth:`fast_advance_ok`): the measured tuple is the
        argument tuple itself, ``size_of`` over the previous arguments is
        memoized on the entry, and the evidence graph is built straight
        into the packed masks with integer compares — ``scheme_equal`` runs
        only on size ties, exactly as :class:`SizeOrder` would."""
        count = entry.count + 1
        next_check = entry.next_check
        if count < next_check:
            return Entry(entry.check_args, entry.comps, count, next_check,
                         entry.m, entry.sizes)
        self.checks_done += 1
        if self.measures:
            args = self.measured(clo, args)
        old = entry.check_args
        old_sizes = entry.sizes
        if old_sizes is None:
            old_sizes = tuple(size_of(v) for v in old)
        new_sizes = []
        for v in args:
            tv = type(v)
            if tv is int:
                new_sizes.append(v if v >= 0 else -v)
            elif tv is Pair:
                new_sizes.append(v.size)
            else:
                new_sizes.append(size_of(v))
        m = entry.m
        if not m:
            m = max(len(old), len(args), 1)
        strict = 0
        weak = 0
        i = 0
        for vi in old:
            si = old_sizes[i]
            base = i * m
            j = 0
            for vj in args:
                if vj is vi:
                    weak |= 1 << (base + j)
                else:
                    sj = new_sizes[j]
                    if sj is not None and si is not None and sj < si:
                        strict |= 1 << (base + j)
                    elif sj == si and scheme_equal(vj, vi):
                        weak |= 1 << (base + j)
                j += 1
            i += 1
        g = (strict, weak)
        comps = entry.comps
        if entry.m and entry.m != m:  # pragma: no cover - arity is fixed
            comps = [bitgraph.widen(c, entry.m, m) for c in comps]
        new_comps = {g}
        bad = None
        if m == 1:
            # Arity 1, fully inlined: every 1×1 graph is idempotent, so
            # desc? is simply "has the strict self-arc".
            any1 = strict | weak
            for (cs, cw) in comps:
                ca = cs | cw
                ns = (cs & any1) | (ca & strict)
                new_comps.add((ns, (ca & any1) & ~ns))
            for c in new_comps:
                if not c[0]:
                    bad = c
                    break
        elif m == 2:
            # Arity 2, fully inlined: compose and desc? unrolled over the
            # two middle positions (col0 mask = 0b0101, row0 = 0b11,
            # diagonal = 0b1001).  Agreement with bitgraph.compose is
            # property-tested.
            a1 = strict | weak
            r0 = a1 & 3
            r1 = (a1 >> 2) & 3
            gs0 = strict & 3
            gs1 = (strict >> 2) & 3
            for (cs, cw) in comps:
                ca = cs | cw
                c0 = ca & 5
                c1 = (ca >> 1) & 5
                every = c0 * r0 | c1 * r1
                ns = ((cs & 5) * r0 | c0 * gs0
                      | ((cs >> 1) & 5) * r1 | c1 * gs1)
                new_comps.add((ns, every & ~ns))
            enforcing = self.enforce
            for c in new_comps:
                if enforcing and c in comps:
                    continue
                c0s, c0w = c
                ca = c0s | c0w
                x0 = ca & 5
                x1 = (ca >> 1) & 5
                y0 = ca & 3
                y1 = (ca >> 2) & 3
                ev = x0 * y0 | x1 * y1
                ns2 = ((c0s & 5) * y0 | x0 * (c0s & 3)
                       | ((c0s >> 1) & 5) * y1 | x1 * ((c0s >> 2) & 3))
                if ns2 == c0s and (ev & ~ns2) == c0w:  # idempotent
                    if not (c0s & 9):
                        bad = c
                        break
        else:
            mk = bitgraph.masks(m)
            mm = m * m
            if comps:
                ccache = _COMPOSE_CACHE
                if len(ccache) > _CACHE_CAP:
                    ccache.clear()
                gk = ((strict << mm | weak) << 8) | m
                for (cs, cw) in comps:
                    ck = (cs << mm | cw) << (mm + mm + 8) | gk
                    r = ccache.get(ck)
                    if r is None:
                        r = ccache[ck] = bitgraph.compose(
                            mk, cs, cw, strict, weak)
                    new_comps.add(r)
            # Under enforcement a composition already in the entry's set
            # passed desc? when it was first created (desc? is a pure
            # function of the graph; a failing one would have raised), so
            # the stabilized steady state re-checks nothing.  Without
            # enforcement failing compositions persist and must re-flag on
            # every call, as the generic path does.
            enforcing = self.enforce
            dcache = _DESC_CACHE
            if len(dcache) > _CACHE_CAP:
                dcache.clear()
            for c in new_comps:
                if enforcing and c in comps:
                    continue
                dk = ((c[0] << mm | c[1]) << 8) | m
                ok = dcache.get(dk)
                if ok is None:
                    ok = dcache[dk] = bitgraph.desc_ok(mk, *c)
                if not ok:
                    bad = c
                    break
        if bad is not None:
            mk = bitgraph.masks(m)
            self._flag_violation(clo, old, args,
                                 bitgraph.unpack(mk, *g),
                                 bitgraph.unpack(mk, *bad), count, blame)
        return Entry(args, new_comps, count,
                     count * 2 if self.backoff else count + 1, m,
                     tuple(new_sizes))

    # -- table strategies --------------------------------------------------------

    def upd(self, table: Hamt, clo: Closure, args: Tuple, blame) -> Hamt:
        """Persistent-table ``upd`` (continuation-mark strategy)."""
        self.calls_seen += 1
        key = self.key_for(clo)
        entry = table.get(key)
        if entry is None:
            if self.events is not None:
                self.events.append(
                    ("call", clo.describe(), self.measured(clo, args), None,
                     [p.name for p in clo.params])
                )
            return table.set(key, self.initial_entry(clo, args))
        return table.set(key, self.advance(entry, clo, args, blame))

    def upd_mut(self, table: dict, clo: Closure, args: Tuple, blame):
        """Mutable-table ``upd`` (imperative strategy).

        Returns ``(key, previous_entry_or_missing_sentinel)`` so the machine
        can push a restore frame (this is what breaks proper tail calls).
        """
        self.calls_seen += 1
        key = self.key_for(clo)
        prev = table.get(key, _MISSING)
        if prev is _MISSING:
            if self.events is not None:
                self.events.append(
                    ("call", clo.describe(), self.measured(clo, args), None,
                     [p.name for p in clo.params])
                )
            table[key] = self.initial_entry(clo, args)
        else:
            table[key] = self.advance(prev, clo, args, blame)
        return key, prev

    def restore_mut(self, table: dict, key, prev) -> None:
        """Undo one ``upd_mut`` (popped from the machine's restore frame)."""
        if prev is _MISSING:
            table.pop(key, None)
        else:
            table[key] = prev
        if self.events is not None:
            self.events.append(("return",))

    def __repr__(self) -> str:
        return (
            f"SCMonitor(order={self.order!r}, keying={self.keying!r}, "
            f"backoff={self.backoff}, engine={self.engine!r})"
        )


MISSING = _MISSING
