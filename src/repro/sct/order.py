"""Well-founded partial orders on runtime values.

``compare(old, new)`` answers how the *new* argument relates to the *old*
one: :data:`DESC` when ``new ≺ old`` (a strict arc), :data:`EQ` when
``new = old`` (a weak arc), :data:`NONE` otherwise.

Two orders ship with the library:

* :class:`SizeOrder` (default) — values carry a natural-number size
  (``|n|`` for integers, memoized node count for pairs, length for strings);
  ``new ≺ old`` iff ``size(new) < size(old)``.  Any strict decrease of a
  natural measure is well-founded, and this order subsumes the paper's
  Fig. 5 containment order (a strict substructure always has smaller size)
  while also justifying e.g. merge-sort's freshly-allocated half-lists.
* :class:`ContainmentOrder` — the literal Fig. 5 order: integers by absolute
  value, a value is below any pair containing it.

Closures have constant size and compare equal only to themselves, i.e. they
are mutually incomparable — the paper's §2.2 design choice.  Floats are
excluded from strict comparison (``|x| < |y|`` on floats is not
well-founded), so they only ever contribute weak arcs.

Users may supply *measures* per function (see
:class:`repro.sct.monitor.SCMonitor`): a measure maps the argument tuple to
a derived tuple compared under the base order, which is how the paper's
"custom partial order" programs (``lh-range``, ``acl2-fig-2``) are handled.
"""

from __future__ import annotations

from repro.values.equality import scheme_equal
from repro.values.values import Pair, size_of

NONE = 0
DESC = 1
EQ = 2


class SizeOrder:
    """The default well-founded order: strict iff the memoized size drops."""

    name = "size"

    def compare(self, old, new) -> int:
        if new is old:
            return EQ
        new_size = size_of(new)
        old_size = size_of(old)
        if new_size is not None and old_size is not None and new_size < old_size:
            return DESC
        if new_size == old_size and scheme_equal(new, old):
            return EQ
        return NONE

    def __repr__(self) -> str:
        return "SizeOrder()"


class ContainmentOrder:
    """The paper's Fig. 5 example order.

    * ``n1 ≺ n2`` iff ``|n1| < |n2|``;
    * ``v ≺ (v', _)`` if ``v ⪯ v'``; ``v ≺ (_, v')`` if ``v ⪯ v'``;
    * ``v ⪯ v'`` iff ``v ≺ v'`` or ``v = v'``.

    The recursive containment search is pruned by the memoized sizes: a
    value can only be contained in a strictly larger pair.
    """

    name = "containment"

    def compare(self, old, new) -> int:
        if new is old or scheme_equal(new, old):
            return EQ
        if self._less(new, old):
            return DESC
        return NONE

    def _less(self, a, b) -> bool:
        """``a ≺ b`` under Fig. 5."""
        if type(a) is int and type(b) is int and type(a) is not bool:
            return abs(a) < abs(b)
        if type(b) is Pair:
            sa = size_of(a)
            if sa is not None and sa >= b.size:
                return False
            return self._leq(a, b.car) or self._leq(a, b.cdr)
        return False

    def _leq(self, a, b) -> bool:
        return scheme_equal(a, b) or self._less(a, b)

    def __repr__(self) -> str:
        return "ContainmentOrder()"


class ClosureDepthOrder(SizeOrder):
    """The Jones–Bohr extension the paper sketches as future work (§2.2):
    order closures by the nesting depth of closures captured in their
    environments, so recursion that "peels" a closure onion can be proved
    terminating.

    ``depth(clo) = 1 + max(depth(c) for closures c bound in clo's local
    ribs)``, with cycles (letrec self-capture) cut at 0.  Depths are
    naturals, so the extended order stays well-founded.  Non-closure values
    keep the size order.  The paper notes this "requires run-time
    facilities for opening closures" — which a metacircular host has.
    """

    name = "closure-depth"

    def compare(self, old, new) -> int:
        from repro.values.values import Closure

        if type(old) is Closure and type(new) is Closure:
            if new is old:
                return EQ
            if self.closure_depth(new) < self.closure_depth(old):
                return DESC
            return NONE
        return super().compare(old, new)

    def closure_depth(self, clo, _seen=None) -> int:
        from repro.values.env import Env
        from repro.values.values import Closure

        seen = _seen if _seen is not None else set()
        if id(clo) in seen:
            return 0
        seen.add(id(clo))
        deepest = 0
        env = clo.env
        # Local ribs only; the global frame is shared.  Tree closures chain
        # dict ribs; compiled closures chain list frames (slot 0 = parent).
        while True:
            if type(env) is Env:
                values = env.bindings.values()
                parent = env.parent
            elif type(env) is list:
                values = env[1:]
                parent = env[0]
            else:
                break
            for value in values:
                if type(value) is Closure:
                    deepest = max(deepest, self.closure_depth(value, seen))
            env = parent
        seen.discard(id(clo))
        return 1 + deepest


DEFAULT_ORDER = SizeOrder()
