PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-quick docs

# Tier-1 verification: the full claim-backing test suite.
test:
	$(PYTHON) -m pytest -x -q

# Machine-readable benchmark cells (pytest-benchmark).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The engine-comparison report alone (fast smoke, used by CI).
bench-quick:
	$(PYTHON) -m repro bench compose --scale quick

# The documentation set worth (re)reading, in order.
docs:
	@ls README.md docs/architecture.md CHANGES.md ROADMAP.md
	@echo "open README.md for the claims map; docs/architecture.md for the layer map"
