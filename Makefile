PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-quick bench-interp bench-interp-smoke \
	bench-residual bench-residual-smoke bench-native native-smoke \
	fuzz fuzz-smoke fuzz-nightly \
	serve-bench serve-smoke chaos chaos-smoke chaos-nightly docs

# Tier-1 verification: the full claim-backing test suite.
test:
	$(PYTHON) -m pytest -x -q

# Machine-readable benchmark cells (pytest-benchmark).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The engine-comparison report alone (fast smoke, used by CI).
bench-quick:
	$(PYTHON) -m repro bench compose --scale quick

# The compiled-vs-tree machine report (writes BENCH_interp.json).
bench-interp:
	$(PYTHON) -m repro bench interp --scale quick

# The CI smoke variant of the same report.
bench-interp-smoke:
	$(PYTHON) -m repro bench interp --smoke

# The residual-enforcement report (writes BENCH_residual.json).
bench-residual:
	$(PYTHON) -m repro bench residual --scale quick

# The CI smoke variant of the same report.
bench-residual-smoke:
	$(PYTHON) -m repro bench residual --smoke

# The native-tier report: three machines over the fully-discharged
# corpus (writes BENCH_native.json; exit 1 when the >=10x geomean or
# the >=compiled-everywhere acceptance misses).
bench-native:
	$(PYTHON) -m repro bench native --scale quick

# The PR-blocking native smoke: the CI subset of the same report, gated
# on its acceptance block, plus a short differential campaign over the
# quick matrix (native cells included).
native-smoke:
	$(PYTHON) -m repro bench native --smoke --out BENCH_native.json
	$(PYTHON) -m repro fuzz --n 50 --seed 1 --matrix quick \
		--out BENCH_fuzz_native.json

# Differential fuzzing over {tree,compiled,native} x {bitmask,reference}
# x {off,monitored,discharged}.  Nonzero exit on any divergence.
fuzz:
	$(PYTHON) -m repro fuzz --n 500 --seed 0 --out BENCH_fuzz.json

# The fast PR-blocking smoke (writes BENCH_fuzz.json for the artifact).
fuzz-smoke:
	$(PYTHON) -m repro fuzz --n 50 --seed 0 --out BENCH_fuzz.json

# The nightly campaign: bigger N, fresh seed range per week.
fuzz-nightly:
	$(PYTHON) -m repro fuzz --n 2000 --seed $(shell date +%U)000 \
		--archive --out BENCH_fuzz.json

# The sized-serve load benchmark: boots a real server, >=1000
# concurrent requests with fault injection (writes BENCH_serve.json).
serve-bench:
	$(PYTHON) benchmarks/bench_serve.py --out BENCH_serve.json

# The PR-blocking serve smoke: 200 mixed requests, zero-drop gate.
serve-smoke:
	$(PYTHON) benchmarks/bench_serve.py --quick --out BENCH_serve.json

# The seeded chaos campaign against the serve resilience layer
# (writes BENCH_chaos.json; exit 1 on any invariant violation).
chaos:
	$(PYTHON) -m repro chaos --n 200 --seed 0 --out BENCH_chaos.json

# The fast PR-blocking chaos smoke: every fault kind, small traffic.
chaos-smoke:
	$(PYTHON) -m repro chaos --n 60 --seed 0 --out BENCH_chaos.json

# Nightly: a bigger campaign under a rotating seed, so the fault plan
# itself varies while staying replayable from the report.
chaos-nightly:
	$(PYTHON) -m repro chaos --n 500 --seed $(shell date +%U)00 \
		--out BENCH_chaos.json

# The documentation set worth (re)reading, in order.
docs:
	@ls README.md docs/architecture.md CHANGES.md ROADMAP.md
	@echo "open README.md for the claims map; docs/architecture.md for the layer map"
