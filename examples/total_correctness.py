"""Contracts for *total* correctness (§2.3), in both front ends.

Run: ``python examples/total_correctness.py``

The paper's framing: ``terminating/c`` "compliments existing contracts
that enforce partial correctness specifications to obtain contracts for
total correctness."  A classical pre/post contract promises "IF this
returns, the result is right"; adding the termination contract upgrades
the IF to WHEN — with blame pointing at the component that broke the
promise.
"""

from repro import SizeChangeError, run_source
from repro.contracts import attach, flat, total
from repro.errors import BlameError


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


# -- Python front end -------------------------------------------------------------

nat = flat(lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 0,
           "nat?")
sorted_list = flat(lambda v: isinstance(v, list)
                   and all(a <= b for a, b in zip(v, v[1:])), "sorted?")
any_list = flat(lambda v: isinstance(v, list), "list?")

banner("Python: a totally-correct merge sort")


@attach(total([any_list], sorted_list), positive="msort-library")
def msort(xs):
    if len(xs) <= 1:
        return xs
    mid = len(xs) // 2
    return _merge(msort(xs[:mid]), msort(xs[mid:]))


def _merge(xs, ys):
    if not xs:
        return ys
    if not ys:
        return xs
    if xs[0] <= ys[0]:
        return [xs[0]] + _merge(xs[1:], ys)
    return [ys[0]] + _merge(xs, ys[1:])


print("msort([5,1,4,2]) =", msort([5, 1, 4, 2]))

banner("Python: a buggy variant is stopped, with blame")


@attach(total([any_list], sorted_list), positive="msort-library")
def msort_buggy(xs):
    if len(xs) <= 1:
        return xs
    mid = len(xs) // 2
    return _merge(msort_buggy(xs[:mid]), msort_buggy(xs[mid:] + [0]))  # grows!


try:
    msort_buggy([5, 1, 4, 2])
except SizeChangeError as exc:
    print("caught before hanging:")
    print(" ", str(exc).splitlines()[0], "- blaming", exc.blame)

# -- the embedded language ------------------------------------------------------------

banner("embedded language: define/contract with ->t/c")

GOOD = """
(define/contract (fact n) (->t/c nat/c nat/c)
  (if (zero? n) 1 (* n (fact (- n 1)))))
(fact 10)
"""
answer = run_source(GOOD, mode="contract")
print("(fact 10) =", answer.value)

banner("embedded language: the three ways a total contract fails")

CASES = [
    ("caller sends a negative", """
(define/contract (fact n) (->t/c nat/c nat/c)
  (if (zero? n) 1 (* n (fact (- n 1)))))
(fact -1)
"""),
    ("function returns a lie", """
(define/contract (fact n) (->t/c nat/c nat/c)
  (- 0 99))
(fact 5)
"""),
    ("function diverges", """
(define/contract (fact n) (->t/c nat/c nat/c)
  (if (zero? n) 1 (* n (fact n))))
(fact 5)
"""),
]

for title, src in CASES:
    answer = run_source(src, mode="contract")
    if answer.kind == answer.SC_ERROR:
        print(f"{title:28s} -> termination violation, blaming "
              f"{answer.violation.blame}")
    else:
        assert isinstance(answer.error, BlameError)
        print(f"{title:28s} -> contract violation, blaming "
              f"{answer.error.party}")

print("\nPartial correctness says what a result must look like; the")
print("termination contract guarantees there is a result to look at.")
