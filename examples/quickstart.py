"""Quickstart: termination contracts on ordinary Python functions.

Run: ``python examples/quickstart.py``

The @terminating decorator is the paper's ``terminating/c`` for Python: it
watches every call in the dynamic extent, builds size-change graphs from
the *actual* argument values, and raises the moment the accumulated graphs
admit an infinite descent-free iteration — i.e. before the loop can hang
your process.
"""

from repro import SizeChangeError, terminating
from repro.contracts import attach, flat, total


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


# -- 1. well-founded recursion just works ---------------------------------------

@terminating
def ackermann(m, n):
    if m == 0:
        return n + 1
    if n == 0:
        return ackermann(m - 1, 1)
    return ackermann(m - 1, ackermann(m, n - 1))


banner("Ackermann under monitoring")
print("ackermann(2, 3) =", ackermann(2, 3))


# -- 2. a real nontermination bug is caught, not hung ------------------------------

@terminating
def merge_sorted(xs, ys):
    if not xs:
        return ys
    if not ys:
        return xs
    if xs[0] <= ys[0]:
        return [xs[0]] + merge_sorted(xs[1:], ys)
    return [ys[0]] + merge_sorted(xs, ys)     # BUG: forgot ys[1:]


banner("buggy merge (forgot to drop the head)")
try:
    merge_sorted([1, 3], [2, 4])
except SizeChangeError as exc:
    print(exc)


# -- 3. counting up needs a custom measure (the paper's 'custom partial order') ------

@terminating(measure=lambda args: (args[1] - args[0],))
def up_to(lo, hi):
    return [] if lo >= hi else [lo] + up_to(lo + 1, hi)


banner("counting up, justified by the measure hi - lo")
print("up_to(0, 8) =", up_to(0, 8))


# -- 4. total correctness: types AND termination, with blame ---------------------------

is_nat = flat(lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 0,
              "nat?")


@attach(total([is_nat], is_nat), positive="factorial-library",
        negative="this-script")
def factorial(n):
    return 1 if n == 0 else n * factorial(n - 1)


banner("a contract for total correctness: (-> nat? nat?) ∧ terminating/c")
print("factorial(10) =", factorial(10))
try:
    factorial(-1)
except Exception as exc:
    print("bad argument blamed on the caller:")
    print(" ", str(exc).splitlines()[0])
