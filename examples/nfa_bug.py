"""The ``nfa`` bug discovery (§5.1.2): finding a decades-old divergence.

Run: ``python examples/nfa_bug.py``

The paper's most striking anecdote: ``nfa``, a Scheme benchmark "that has
been around for decades", implements a nondeterministic automaton for
``((a|c)*bcd)|(a*bc)``.  One of its states retries ``(a|c)*`` with the
*same* input instead of the rest of the input — a divergence the original
benchmark input never triggers, which is why nobody noticed.  The paper's
static analysis was "the first to discover this error after many years".

This script replays the discovery three ways:

1. the static verifier pinpoints the non-descending call,
2. dynamic monitoring catches the divergence instantly on a triggering
   input (where the unmonitored program would hang),
3. the fixed automaton verifies and runs.
"""

from repro import run_source, verify_source
from repro.sct.monitor import SCMonitor

BUGGY = """
(define (state1 input)
  (and (not (null? input))
       (or (and (char=? (car input) #\\a)
                (state1 (cdr input)))
           (and (char=? (car input) #\\c)
                (state1 input))          ; BUG: same input, no descent
           (state2 input))))
(define (state2 input)
  (and (not (null? input))
       (and (char=? (car input) #\\b)
            (state3 (cdr input)))))
(define (state3 input)
  (and (not (null? input))
       (char=? (car input) #\\c)
       (null? (cdr input))))
(define (recognize s) (state1 (string->list s)))
"""

FIXED = BUGGY.replace("(state1 input))          ; BUG: same input, no descent",
                      "(state1 (cdr input)))")


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


banner("1. static analysis discovers the bug")
verdict = verify_source(BUGGY, "state1", ["list"])
print(verdict.render())
assert not verdict.verified

banner("2. dynamic monitoring stops the triggering input immediately")
# The benchmark's historical input (a^n b c) never reaches the buggy
# branch; an input with a 'c' before the 'b' does.
answer = run_source(BUGGY + '(recognize "acbc")', mode="full",
                    monitor=SCMonitor())
print(answer.violation)
assert answer.kind == answer.SC_ERROR

banner("3. the fixed automaton verifies and runs")
verdict = verify_source(FIXED, "state1", ["list"])
print(verdict.render())
assert verdict.verified
for text in ("abc", "acbc", "aabc", "ab"):
    result = run_source(FIXED + f'(recognize "{text}")', mode="full")
    print(f'recognize "{text}" =', result.value)
print("\nThe contract caught in milliseconds what code review missed for decades.")
