"""The embedded λSCT language: §2.1's worked example, executable.

Run: ``python examples/embedded_ack.py``

Shows (1) the exact dynamic size-change graphs of Fig. 1 for (ack 2 0),
(2) the buggy Ackermann being stopped with the paper's witness graph, and
(3) selective enforcement with `terminating/c` and blame (§2.3).
"""

from repro import Answer, SCMonitor, run_source

ACK = """
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))
(ack 2 0)
"""

BUGGY_ACK = """
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack m (ack m (- n 1)))]))   ; BUG: kept m in the outer call
(ack 2 0)
"""

CONTRACTS = """
(define (helper x) (helper x))             ; diverges, but unwrapped
(define entry
  (terminating/c (lambda (x) (helper x)) "the entry component"))
(entry 5)
"""


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


banner("Fig. 1: the graphs the monitor builds for (ack 2 0)")
trace = []
monitor = SCMonitor(trace=trace)
answer = run_source(ACK, mode="full", monitor=monitor)
assert answer.kind == Answer.VALUE
print(f"(ack 2 0) = {answer.value}")
for fn, prev, new, graph in trace:
    if fn == "ack":
        print(f"  (ack {prev[0]} {prev[1]}) ↝ (ack {new[0]} {new[1]})   "
              f"{graph.pretty(['m', 'n'])}")

banner("the sometimes-buggy Ackermann (§2.1) is stopped")
answer = run_source(BUGGY_ACK, mode="full")
assert answer.kind == Answer.SC_ERROR
print(answer.violation)

banner("terminating/c with blame (§2.3)")
answer = run_source(CONTRACTS, mode="contract")
assert answer.kind == Answer.SC_ERROR
print(f"blamed party: {answer.violation.blame}")
print(f"offending function: {answer.violation.function}")
print("(helper diverges, but the contract was on entry — entry's author "
      "should impose the contract on helper too)")
