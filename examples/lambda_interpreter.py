"""§2.4 / Fig. 2: dynamically checking a Turing-complete interpreter.

Run: ``python examples/lambda_interpreter.py``

The λ-calculus compiler `comp-lc` terminates by structural recursion; the
*compiled programs* may not.  Dynamic monitoring lets the terminating term
run to completion and stops the diverging one — something no static
analysis of the interpreter alone could decide.
"""

from repro import Answer, run_source
from repro.corpus.lambda_interp import FIG2_LOOPS, FIG2_OK


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


banner("c1 = ((λ (x) (x x)) (λ (y) y)) — terminates")
answer = run_source(FIG2_OK, mode="contract")
assert answer.kind == Answer.VALUE
print("(c1 (hash)) evaluated to a procedure: ", answer.value)

banner("c2 = ((λ (x) (x x)) (λ (y) (y y))) — Ω, caught in flight")
answer = run_source(FIG2_LOOPS, mode="contract")
assert answer.kind == Answer.SC_ERROR
print(answer.violation)
print("\nNote the blame: the terminating/c on c2, exactly as in Fig. 2's "
      "comments ('Okay' vs 'Error').")
