"""The `scheme` benchmark: monitoring an interpreter interpreting merge-sort.

Run: ``python examples/scheme_interpreter.py``

A compile-to-closures interpreter for a Scheme subset runs *under full
size-change monitoring* while it interprets merge-sort, factorial and sum.
Interpreted recursion shows up to the monitor as host-closure recursion on
real interpreted values, so the whole tower terminates visibly — the
paper's §2.4 point that dynamic checking handles programs whose
termination depends on their *input program*.
"""

from repro import Answer, SCMonitor, run_source
from repro.corpus.interpreter import (
    interpreted_factorial_source,
    interpreted_msort_source,
    interpreted_sum_source,
)
from repro.values.values import write_value


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


for title, source in [
    ("interpreted merge-sort of 20 shuffled numbers", interpreted_msort_source(20)),
    ("interpreted factorial of 15", interpreted_factorial_source(15)),
    ("interpreted sum of 1..60", interpreted_sum_source(60)),
]:
    banner(title + " (fully monitored)")
    monitor = SCMonitor()
    answer = run_source(source, mode="full", monitor=monitor)
    assert answer.kind == Answer.VALUE, answer
    print("result:", write_value(answer.value))
    print(f"monitored calls: {monitor.calls_seen}, graph checks: "
          f"{monitor.checks_done}, violations: none")

banner("a diverging *interpreted* program is still caught")
# Break the interpreted sum's descent: (isum (- n 1)) becomes (isum n).
LOOP = interpreted_sum_source(5).replace("(isum (- n 1))", "(isum n)")
answer = run_source(LOOP, mode="full")
assert answer.kind == Answer.SC_ERROR
print(str(answer.violation).splitlines()[0])
print("(the violation is in the *interpreted* loop, observed through the "
      "compiled closures' environments)")
