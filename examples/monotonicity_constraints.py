"""Monotonicity constraints: the paper's §6.2 future-work item, running.

Run: ``python examples/monotonicity_constraints.py``

Size-change graphs only record how arguments *descend*.  Monotonicity-
constraint (MC) graphs also record context (``lo < hi``) and ascent
(``lo′ > lo``), which buys two things the paper leaves to future work:

1. counting-up-to-a-ceiling loops are accepted **without** a custom
   measure, dynamically and statically;
2. branch-guard context prunes infeasible compositions statically.
"""

from repro import MCMonitor, SCMonitor, run_source, verify_source, verify_source_mc
from repro.pyterm import SizeChangeError, terminating
from repro.sct.trace import render_tree, trace_source


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


RANGE = """
(define (range2 lo hi)
  (if (>= lo hi) '() (cons lo (range2 (+ lo 1) hi))))
(range2 0 6)
"""

banner("counting up: SC rejects without a measure")
answer = run_source(RANGE, mode="full", monitor=SCMonitor())
print(str(answer.violation).splitlines()[0])

banner("the paper's fix: a custom measure (hi - lo)")
monitor = SCMonitor(measures={"range2": lambda a: (a[1] - a[0],)})
print("with measure:", run_source(RANGE, mode="full", monitor=monitor).value)

banner("the MC monitor needs no measure")
print("under MC:    ", run_source(RANGE, mode="full", monitor=MCMonitor()).value)

banner("why: the observed MC graphs carry the climb and the ceiling")
print(render_tree(trace_source(RANGE, monitor=MCMonitor()).roots))

banner("statically: SC unknown, MC verified")
print("SC:", verify_source(RANGE, "range2", ["nat", "nat"]).status)
print("MC:", verify_source_mc(RANGE, "range2", ["nat", "nat"]).status)

banner("divergent ascent is still caught (soundness is kept)")
answer = run_source("(define (up x) (up (+ x 1))) (up 0)",
                    mode="full", monitor=MCMonitor())
print(str(answer.violation).splitlines()[0])

banner("context pruning: a guarded swap verifies under MC")
SWAP = """
(define (swapper x y)
  (cond [(zero? x) 0]
        [(zero? y) 0]
        [(> x y) (swapper y x)]
        [(< x y) (swapper (- x 1) y)]
        [else 0]))
"""
print("MC:", verify_source_mc(SWAP, "swapper", ["nat", "nat"]).status,
      "(the swap;swap composition is unsatisfiable: x>y then y>x)")

banner("Python decorator: graphs='mc'")


@terminating(graphs="mc")
def take_until(i, items):
    """Scan forward through a fixed list — an ascending index."""
    if i >= len(items) or items[i] < 0:
        return []
    return [items[i]] + take_until(i + 1, items)


print("take_until:", take_until(0, [3, 1, 4, -1, 5]))


@terminating  # plain SC graphs reject the same loop
def take_until_sc(i, items):
    if i >= len(items) or items[i] < 0:
        return []
    return [items[i]] + take_until_sc(i + 1, items)


try:
    take_until_sc(0, [3, 1, 4, -1, 5])
except SizeChangeError:
    print("take_until_sc: rejected by SC graphs, as expected")

print("\nLimitation kept honest: the ceiling must be a *parameter*;")
print("counting up to a constant still needs a measure (see EXPERIMENTS.md).")
