"""§2.2: why dynamic checking beats static SCT on higher-order code.

Run: ``python examples/cps_len.py``

The CPS list-length function builds a fresh continuation closure per
element.  Classic static SCT needs a control-flow analysis, which must
conflate all those closures into one abstract continuation — producing a
spurious self-call "with a larger argument" and a rejection.  The dynamic
monitor keys its table by exact closure identity, so every continuation
gets its own (trivially satisfied) entry and the program runs.
"""

from repro import Answer, SCMonitor, run_source
from repro.analysis import static_sct_check
from repro.lang.parser import parse_program

CPS_LEN = """
(define (len l) (go l (lambda (x) x)))
(define (go l k)
  (cond [(empty? l) (k 0)]
        [(cons? l) (go (rest l) (lambda (n) (k (+ 1 n))))]))
(len '(10 20 30 40 50))
"""


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


banner("classic static SCT (0-CFA + Lee–Jones–Ben-Amram)")
result = static_sct_check(parse_program(CPS_LEN))
print(f"verdict: {'terminates' if result.ok else 'REJECTED'}")
print(f"spurious loop at: {result.witness_name} "
      f"(the conflated continuation closure)")
print(f"witness graph: {result.witness_graph.pretty(['n'])} — idempotent, "
      "no strict self-arc")

banner("dynamic size-change monitoring")
monitor = SCMonitor()
answer = run_source(CPS_LEN, mode="full", monitor=monitor)
assert answer.kind == Answer.VALUE
print(f"(len '(10 20 30 40 50)) = {answer.value}")
print(f"monitored calls: {monitor.calls_seen}; violations: none — each "
      "continuation closure is exact and distinct (§2.2)")

banner("and the monitor still catches the genuinely broken variant")
BROKEN = CPS_LEN.replace("(go (rest l)", "(go l")
answer = run_source(BROKEN, mode="full")
assert answer.kind == Answer.SC_ERROR
print(str(answer.violation).splitlines()[0])
