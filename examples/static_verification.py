"""Static termination verification (§4) — including the nfa bug story.

Run: ``python examples/static_verification.py``

1. Verifies Ackermann from its contract (nat × nat → nat), printing the
   derived Fig. 9 size-change graphs.
2. Re-discovers the decades-old nontermination bug in the `nfa` Scheme
   benchmark (§5.1.2) — statically, then confirms it dynamically on an
   input the original benchmark never exercised.
"""

from repro import Answer, run_source, verify_source
from repro.values.values import write_value
from repro.corpus.registry import DIVERGING, REGISTRY

ACK = """
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))
"""


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


banner("verifying ack against (-> nat? nat? nat?) — §4.2")
verdict = verify_source(ACK, "ack", ["nat", "nat"], result_kinds={"ack": "nat"})
print(verdict.render())
print("derived size-change graphs (Fig. 9):")
for (f, g), graphs in verdict.engine.edges.items():
    names = verdict.engine.label_params.get(f)
    for graph in sorted(graphs, key=len):
        print(f"  ack → ack  {graph.pretty(names)}")

banner("the nfa bug (§5.1.2): static discovery")
buggy = DIVERGING["buggy-nfa"].source
verdict = verify_source(buggy, "state1", ["list"])
print(verdict.render())

banner("…confirmed dynamically on an input with a 'c' before the 'b'")
answer = run_source(buggy, mode="full")
assert answer.kind == Answer.SC_ERROR
print(answer.violation)

banner("the fixed nfa verifies")
fixed = REGISTRY["nfa"].source
verdict = verify_source(fixed, "state1", ["list"])
print(verdict.render())
print("\nAnd the fixed program still recognizes the historical input:")
answer = run_source(fixed, mode="full")
print("(recognize \"a…bc\") =", write_value(answer.value))
