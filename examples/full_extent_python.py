"""Full-extent monitoring: λSCT's every-application semantics for Python.

Run: ``python examples/full_extent_python.py``

``@terminating`` is opt-in per function (the λCSCT contract semantics).
``monitor_extent`` is the other end of the paper's spectrum: inside the
block, *every* Python call is observed through the profiling hook — so a
divergence hiding in a helper nobody thought to annotate is still caught.
"""

from repro.pyterm import SizeChangeError, monitor_extent, monitored


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


# -- a divergence nobody annotated ------------------------------------------------

def normalize(term):
    """Rewrite (a - b) - c into a - (b + c)... with a bug that re-wraps
    instead of shrinking when the right child is a literal."""
    if isinstance(term, tuple) and term[0] == "-":
        _, a, b = term
        if isinstance(a, tuple) and a[0] == "-":
            return normalize(("-", a[1], ("+", a[2], b)))
        if isinstance(b, int):
            return normalize(("-", a, b))  # BUG: no progress
    return term


banner("an unannotated helper diverges; the extent catches it")
try:
    with monitor_extent(deep=True):
        normalize(("-", ("-", "x", 1), 2))
except SizeChangeError as exc:
    print("caught:", str(exc).splitlines()[0])
    print("       ", "after", exc.call_count, "calls —",
          "the process never hangs")

# -- the whole pipeline, monitored from one annotation --------------------------------


@monitored(deep=True)
def pipeline(terms):
    parsed = [parse(t) for t in terms]
    return [evaluate(t, {"x": 3}) for t in parsed]


def parse(tokens):
    if isinstance(tokens, list):
        op, a, b = tokens
        return (op, parse(a), parse(b))
    return tokens


def evaluate(term, env):
    if isinstance(term, tuple):
        op, a, b = term
        left, right = evaluate(a, env), evaluate(b, env)
        return left + right if op == "+" else left - right
    if isinstance(term, str):
        return env[term]
    return term


banner("a healthy pipeline runs unchanged under @monitored")
print("pipeline:", pipeline([["+", "x", 1], ["-", ["+", "x", "x"], 2]]))

# -- statistics --------------------------------------------------------------------

banner("how much was watched")
with monitor_extent(deep=True) as extent:
    pipeline.__wrapped__([["+", 1, 2]])
print(f"calls seen: {extent.calls_seen}, graphs checked: {extent.checks_done}")

with monitor_extent(deep=True, backoff=True) as lazy:
    pipeline.__wrapped__([["+", 1, 2]])
print(f"with backoff: {lazy.calls_seen} seen, {lazy.checks_done} checked "
      "(§5's tunable overhead)")
